// Eventual set timeliness (GST-style schedules) and deterministic
// replay.
//
// A schedule that is adversarial up to a switch point and timely after
// it has a finite Definition 1 bound — the finite prefix contributes a
// finite worst window — so it belongs to S^i_{j,n}, and the detector
// and solver must recover after the switch (the DLS "eventual" shape
// inside the set-timeliness model).
#include <gtest/gtest.h>

#include <memory>

#include "src/agreement/kset.h"
#include "src/fd/kantiomega.h"
#include "src/fd/property.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::sched {
namespace {

std::unique_ptr<ScheduleGenerator> gst_generator(int n, int k, int t,
                                                 std::int64_t gst,
                                                 std::uint64_t seed) {
  // Before GST: k-subset starvation (no k-set timely). After: enforced
  // witness (first k timely w.r.t. first t+1, bound 3).
  auto before = std::make_unique<KSubsetStarverGenerator>(
      n, ProcSet::universe(n), k, 400);
  auto base = std::make_unique<UniformRandomGenerator>(n, seed);
  auto after = EnforcedGenerator::single(
      std::move(base),
      TimelinessConstraint(ProcSet::range(0, k), ProcSet::range(0, t + 1),
                           3));
  return std::make_unique<SwitchGenerator>(std::move(before),
                                           std::move(after), gst);
}

TEST(GstScheduleTest, FiniteBoundDespiteAdversarialPrefix) {
  const int n = 5, k = 2, t = 2;
  auto gen = gst_generator(n, k, t, 30'000, 3);
  const Schedule s = generate(*gen, 120'000);
  const ProcSet p = ProcSet::range(0, k);
  const ProcSet q = ProcSet::range(0, t + 1);
  const std::int64_t whole = min_timeliness_bound(s, p, q);
  const std::int64_t suffix = min_timeliness_bound(s, p, q, 30'000, 120'000);
  EXPECT_LE(suffix, 3);
  EXPECT_GT(whole, 3);                  // prefix damage is visible...
  EXPECT_LT(whole, 30'001);             // ...but finite (in-system)
}

class GstRecoverySweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GstRecoverySweep, DetectorAndSolverRecoverAfterGst) {
  const int n = 4, k = 1, t = 2;
  const std::int64_t gst = GetParam();
  shm::SimMemory mem;
  fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
  agreement::KSetAgreement kset(
      mem, agreement::KSetAgreement::Params{n, k, t}, &detector);
  shm::Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(detector.run(p), "fd");
    kset.install(sim.process(p), p, 100 + p);
  }
  auto gen = gst_generator(n, k, t, gst, 17);
  const ProcSet all = ProcSet::universe(n);
  sim.run_until(*gen, gst + 2'000'000, [&] {
    return kset.all_decided(all) && detector.stabilized(all, 6);
  });
  EXPECT_TRUE(kset.all_decided(all)) << "gst=" << gst;
  EXPECT_EQ(kset.distinct_decisions(all).size(), 1u);
  const auto check = fd::check_kantiomega(detector, all, 6);
  EXPECT_TRUE(check.ok) << "gst=" << gst << " :: " << check.detail;
}

INSTANTIATE_TEST_SUITE_P(GstPoints, GstRecoverySweep,
                         ::testing::Values(0, 1'000, 20'000, 100'000,
                                           400'000));

TEST(SwitchGeneratorTest, SwitchesAtExactStep) {
  auto before = std::make_unique<WeightedRandomGenerator>(
      std::vector<double>{1.0, 0.0}, 1);
  auto after = std::make_unique<WeightedRandomGenerator>(
      std::vector<double>{0.0, 1.0}, 2);
  SwitchGenerator gen(std::move(before), std::move(after), 10);
  const Schedule s = generate(gen, 20);
  for (std::int64_t idx = 0; idx < 10; ++idx) EXPECT_EQ(s[idx], 0);
  for (std::int64_t idx = 10; idx < 20; ++idx) EXPECT_EQ(s[idx], 1);
}

TEST(ReplayGeneratorTest, ReplaysExecutedRunExactly) {
  // Record a run, then replay it: the executed schedules and the final
  // shared memory must be identical (full determinism end to end).
  const int n = 3, k = 1, t = 1;
  auto run_once = [&](ScheduleGenerator& gen, Schedule* executed,
                      std::vector<std::int64_t>* decisions) {
    shm::SimMemory mem;
    fd::KAntiOmega detector(mem, fd::KAntiOmega::Params{n, k, t, 1});
    agreement::KSetAgreement kset(
        mem, agreement::KSetAgreement::Params{n, k, t}, &detector);
    shm::Simulator sim(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim.process(p).add_task(detector.run(p), "fd");
      kset.install(sim.process(p), p, 100 + p);
    }
    sim.run_until(gen, 200'000, [&] {
      return kset.all_decided(ProcSet::universe(n));
    });
    *executed = sim.executed();
    decisions->clear();
    for (Pid p = 0; p < n; ++p) {
      decisions->push_back(kset.outcome(p).value);
    }
  };

  UniformRandomGenerator original(n, 99);
  Schedule first(n);
  std::vector<std::int64_t> first_decisions;
  run_once(original, &first, &first_decisions);

  ReplayGenerator replay(first);
  Schedule second(n);
  std::vector<std::int64_t> second_decisions;
  run_once(replay, &second, &second_decisions);

  EXPECT_EQ(first.steps(), second.steps());
  EXPECT_EQ(first_decisions, second_decisions);
}

TEST(ReplayGeneratorTest, FallsBackToRoundRobin) {
  ReplayGenerator gen(Schedule(3, {2, 2}));
  EXPECT_EQ(gen.next(), 2);
  EXPECT_EQ(gen.next(), 2);
  EXPECT_TRUE(gen.exhausted());
  EXPECT_EQ(gen.next(), 0);
  EXPECT_EQ(gen.next(), 1);
  EXPECT_EQ(gen.next(), 2);
}

}  // namespace
}  // namespace setlib::sched
