// The Theorem 27 predicate and the structural facts around it
// (Observations 4-7, Theorem 26's separation corollaries).
#include "src/core/solvability.h"

#include <gtest/gtest.h>

#include "src/util/assert.h"

namespace setlib::core {
namespace {

TEST(SolvabilityTest, PaperHeadlineCases) {
  // S^k_{t+1,n} solves (t,k,n)-agreement (Theorem 24)...
  EXPECT_TRUE(solvable({2, 2, 5}, {2, 3, 5}));
  // ...but not (t+1, k, n)-agreement (needs j - i >= t+2-k)...
  EXPECT_FALSE(solvable({3, 2, 5}, {2, 3, 5}));
  // ...nor (t, k-1, n)-agreement (i <= k-1 fails and the gap shrinks).
  EXPECT_FALSE(solvable({2, 1, 5}, {2, 3, 5}));
  // The matching systems for the two stronger problems:
  EXPECT_TRUE(solvable({3, 2, 5}, {2, 4, 5}));  // S^k_{t+2,n}
  EXPECT_TRUE(solvable({2, 1, 5}, {1, 3, 5}));  // S^{k-1}_{t+1,n}
}

TEST(SolvabilityTest, AsynchronousSystems) {
  // Observation 5 + the classic impossibilities: S^i_{i,n} is async, so
  // (t,k,n) with k <= t is unsolvable there...
  for (int i = 1; i <= 5; ++i) {
    EXPECT_FALSE(solvable({2, 2, 5}, {i, i, 5})) << "i=" << i;
  }
  // ...while k > t is solvable even there (Corollary 25's trivial case).
  EXPECT_TRUE(solvable({1, 2, 5}, {3, 3, 5}));
  EXPECT_TRUE(solvable({2, 4, 5}, {5, 5, 5}));
}

TEST(SolvabilityTest, ExhaustiveFrontierShape) {
  // For every (t, k, n) in a small grid, the solvable region in (i, j)
  // is exactly the rectangle-with-diagonal the theorem states, and is
  // monotone per Observation 7 (shrink i, grow j preserves solvability).
  for (int n = 2; n <= 7; ++n) {
    for (int t = 1; t <= n - 1; ++t) {
      for (int k = 1; k <= t; ++k) {
        for (int i = 1; i <= n; ++i) {
          for (int j = i; j <= n; ++j) {
            const bool expect = (i <= k) && (j - i >= t + 1 - k);
            EXPECT_EQ(solvable({t, k, n}, {i, j, n}), expect)
                << "t=" << t << " k=" << k << " n=" << n << " i=" << i
                << " j=" << j;
            if (expect) {
              // Observation 7: weaker systems inherit solvability.
              if (i > 1) {
                EXPECT_TRUE(solvable({t, k, n}, {i - 1, j, n}));
              }
              if (j < n) {
                EXPECT_TRUE(solvable({t, k, n}, {i, j + 1, n}));
              }
            }
          }
        }
      }
    }
  }
}

TEST(SolvabilityTest, MatchingSystemIsTightestSolvable) {
  for (int n = 3; n <= 7; ++n) {
    for (int t = 1; t <= n - 1; ++t) {
      for (int k = 1; k <= t; ++k) {
        const AgreementSpec spec{t, k, n};
        const SystemSpec match = matching_system(spec);
        EXPECT_TRUE(solvable(spec, match)) << spec.to_string();
        // Tightness: shrinking the gap or growing i breaks it.
        if (match.j - match.i == t + 1 - k && match.j > match.i) {
          SystemSpec narrower = match;
          --narrower.j;
          if (narrower.j >= narrower.i) {
            EXPECT_FALSE(solvable(spec, narrower)) << spec.to_string();
          }
        }
        if (match.i == k && match.i < match.j && k < n) {
          SystemSpec bigger = match;
          ++bigger.i;
          if (bigger.i <= bigger.j) {
            EXPECT_FALSE(solvable(spec, bigger)) << spec.to_string();
          }
        }
      }
    }
  }
}

TEST(SolvabilityTest, ContainmentObservation4) {
  // S^{i'}_{j'} contained in S^i_j iff i' <= i and j <= j'.
  EXPECT_TRUE(contained_in({1, 4, 5}, {2, 3, 5}));
  EXPECT_FALSE(contained_in({3, 4, 5}, {2, 4, 5}));
  EXPECT_FALSE(contained_in({1, 3, 5}, {1, 4, 5}));
  // Containment + Observation 6: solvable in the weaker system implies
  // solvable in the contained one.
  const AgreementSpec spec{2, 2, 5};
  for (int i = 1; i <= 5; ++i) {
    for (int j = i; j <= 5; ++j) {
      for (int i2 = 1; i2 <= i; ++i2) {
        for (int j2 = j; j2 <= 5; ++j2) {
          if (solvable(spec, {i, j, 5})) {
            EXPECT_TRUE(solvable(spec, {i2, j2, 5}))
                << i << "," << j << " -> " << i2 << "," << j2;
          }
        }
      }
    }
  }
}

TEST(SolvabilityTest, SeparationTriple) {
  // The headline separation: S^k_{t+1,n} distinguishes (t,k,n) from
  // both incrementally stronger problems, for every valid (t,k,n) with
  // k <= t and t+1 <= n-1.
  for (int n = 3; n <= 7; ++n) {
    for (int t = 1; t <= n - 2; ++t) {
      for (int k = 1; k <= t; ++k) {
        const AgreementSpec spec{t, k, n};
        const SystemSpec sys = matching_system(spec);
        EXPECT_TRUE(solvable(spec, sys));
        EXPECT_FALSE(solvable(stronger_resilience(spec), sys))
            << spec.to_string();
        if (k >= 2) {
          EXPECT_FALSE(solvable(stronger_agreement(spec), sys))
              << spec.to_string();
        }
      }
    }
  }
}

TEST(SolvabilityTest, SpecValidation) {
  EXPECT_THROW(solvable({0, 1, 3}, {1, 1, 3}), ContractViolation);
  EXPECT_THROW(solvable({1, 0, 3}, {1, 1, 3}), ContractViolation);
  EXPECT_THROW(solvable({1, 1, 3}, {2, 1, 3}), ContractViolation);
  EXPECT_THROW(solvable({1, 1, 3}, {1, 4, 3}), ContractViolation);
  EXPECT_THROW(solvable({1, 1, 3}, {1, 1, 4}), ContractViolation);
}

TEST(SpecTest, ToStringFormats) {
  EXPECT_EQ((AgreementSpec{2, 1, 4}).to_string(), "(2,1,4)-agreement");
  EXPECT_EQ((SystemSpec{2, 3, 5}).to_string(), "S^2_{3,5}");
  EXPECT_TRUE((SystemSpec{3, 3, 5}).is_asynchronous());
  EXPECT_FALSE((SystemSpec{2, 3, 5}).is_asynchronous());
}

}  // namespace
}  // namespace setlib::core
