// The (t, k, n)-agreement algorithms: the detector + k-Paxos stack
// (Theorem 24) and the trivial k > t algorithm (Corollary 25), plus the
// outcome validator itself.
#include <gtest/gtest.h>

#include <memory>

#include "src/agreement/kset.h"
#include "src/agreement/trivial.h"
#include "src/agreement/validator.h"
#include "src/fd/kantiomega.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"

namespace setlib::agreement {
namespace {

TEST(ValidatorTest, FlagsEachViolationKind) {
  const std::vector<std::int64_t> proposals{1, 2, 3};
  {
    // Too many distinct values for k = 1.
    std::vector<std::optional<std::int64_t>> d{1, 2, 1};
    const auto v = validate_agreement(1, 1, 3, proposals, d, ProcSet());
    EXPECT_FALSE(v.agreement_ok);
    EXPECT_TRUE(v.validity_ok);
    EXPECT_FALSE(v.ok);
  }
  {
    // Invalid value.
    std::vector<std::optional<std::int64_t>> d{9, 9, 9};
    const auto v = validate_agreement(1, 1, 3, proposals, d, ProcSet());
    EXPECT_TRUE(v.agreement_ok);
    EXPECT_FALSE(v.validity_ok);
  }
  {
    // Missing decision of a correct process.
    std::vector<std::optional<std::int64_t>> d{1, std::nullopt, 1};
    const auto v = validate_agreement(1, 1, 3, proposals, d, ProcSet());
    EXPECT_FALSE(v.termination_ok);
  }
  {
    // Missing decision of a crashed process is fine.
    std::vector<std::optional<std::int64_t>> d{1, std::nullopt, 1};
    const auto v =
        validate_agreement(1, 1, 3, proposals, d, ProcSet::of(1));
    EXPECT_TRUE(v.termination_ok);
    EXPECT_TRUE(v.ok);
  }
  {
    // More crashes than t: termination vacuous.
    std::vector<std::optional<std::int64_t>> d{std::nullopt, std::nullopt,
                                               std::nullopt};
    const auto v =
        validate_agreement(1, 1, 3, proposals, d, ProcSet::of({1, 2}));
    EXPECT_TRUE(v.termination_ok);
  }
}

TEST(TrivialTest, DecidesSmallestVisibleWriter) {
  const int n = 4, t = 1;
  shm::SimMemory mem;
  TrivialAgreement algo(mem, n, t);
  shm::Simulator sim(mem, n);
  std::vector<TrivialAgreement::Outcome> outs(n);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(algo.run(p, 50 + p, &outs[p]), "trivial");
  }
  sched::RoundRobinGenerator gen(n);
  sim.run(gen, 10'000);
  for (Pid p = 0; p < n; ++p) {
    ASSERT_TRUE(outs[p].decided);
    // Under round-robin, process 0 writes first: everyone adopts it.
    EXPECT_EQ(outs[p].value, 50);
    EXPECT_EQ(outs[p].from, 0);
  }
}

class TrivialSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(TrivialSweep, AtMostTPlusOneValues) {
  const auto [n, t, seed] = GetParam();
  const int k = t + 1;  // the k > t regime
  shm::SimMemory mem;
  TrivialAgreement algo(mem, n, t);
  shm::Simulator sim(mem, n);
  std::vector<TrivialAgreement::Outcome> outs(n);
  std::vector<std::int64_t> proposals;
  for (Pid p = 0; p < n; ++p) proposals.push_back(100 + p);
  for (Pid p = 0; p < n; ++p) {
    sim.process(p).add_task(algo.run(p, proposals[p], &outs[p]), "trivial");
  }
  // Crash t processes at a random-ish early step.
  const sched::CrashPlan plan =
      sched::CrashPlan::at(n, ProcSet::range(n - t, n), 5 + (seed % 17));
  sim.use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, seed);
  sched::CrashFilterGenerator gen(std::move(base), plan);
  sim.run(gen, 200'000);

  std::vector<std::optional<std::int64_t>> decisions(n);
  for (Pid p = 0; p < n; ++p) {
    if (outs[p].decided) {
      decisions[p] = outs[p].value;
      // The adopted writer is always among the first t+1 processes.
      EXPECT_LE(outs[p].from, t);
    }
  }
  const auto v =
      validate_agreement(t, k, n, proposals, decisions, plan.faulty());
  EXPECT_TRUE(v.ok) << v.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrivialSweep,
    ::testing::Combine(::testing::Values(3, 4, 6), ::testing::Values(1, 2),
                       ::testing::Values(1u, 7u, 23u)));

struct KSetRig {
  shm::SimMemory mem;
  std::unique_ptr<fd::KAntiOmega> detector;
  std::unique_ptr<KSetAgreement> kset;
  std::unique_ptr<shm::Simulator> sim;

  KSetRig(int n, int k, int t) {
    detector = std::make_unique<fd::KAntiOmega>(
        mem, fd::KAntiOmega::Params{n, k, t, 1});
    kset = std::make_unique<KSetAgreement>(
        mem, KSetAgreement::Params{n, k, t}, detector.get());
    sim = std::make_unique<shm::Simulator>(mem, n);
    for (Pid p = 0; p < n; ++p) {
      sim->process(p).add_task(detector->run(p), "fd");
      kset->install(sim->process(p), p, 100 + p);
    }
  }
};

TEST(KSetTest, ParamValidation) {
  shm::SimMemory mem;
  fd::KAntiOmega det(mem, {4, 2, 2, 1});
  EXPECT_THROW(
      KSetAgreement(mem, KSetAgreement::Params{4, 3, 2}, &det),
      ContractViolation);  // k mismatch with detector
  EXPECT_THROW(KSetAgreement(mem, KSetAgreement::Params{4, 2, 2}, nullptr),
               ContractViolation);
}

TEST(KSetTest, DistinctDecisionsHelpers) {
  KSetRig rig(4, 1, 2);
  sched::RoundRobinGenerator gen(4);
  rig.sim->run_until(gen, 300'000, [&] {
    return rig.kset->all_decided(ProcSet::universe(4));
  });
  ASSERT_TRUE(rig.kset->all_decided(ProcSet::universe(4)));
  const auto values = rig.kset->distinct_decisions(ProcSet::universe(4));
  EXPECT_EQ(values.size(), 1u);  // k = 1: consensus
  for (Pid p = 0; p < 4; ++p) {
    EXPECT_EQ(rig.kset->outcome(p).via_instance, 0);
  }
}

struct KSetParams {
  int n;
  int k;
  int t;
  int crashes;
  std::uint64_t seed;
};

class KSetSweep : public ::testing::TestWithParam<KSetParams> {};

TEST_P(KSetSweep, SolvesInMatchingSystem) {
  const auto [n, k, t, crashes, seed] = GetParam();
  ASSERT_LE(crashes, t);
  KSetRig rig(n, k, t);
  const sched::CrashPlan plan =
      crashes > 0
          ? sched::CrashPlan::at(n, ProcSet::range(n - crashes, n),
                                 20'000 + 100 * (seed % 7))
          : sched::CrashPlan::none(n);
  rig.sim->use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, seed);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::range(0, k),
                                  ProcSet::range(0, std::min(t + 1, n)),
                                  3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);
  const ProcSet correct = plan.faulty().complement(n);
  rig.sim->run_until(gen, 2'000'000,
                     [&] { return rig.kset->all_decided(correct); });

  std::vector<std::int64_t> proposals;
  for (Pid p = 0; p < n; ++p) proposals.push_back(100 + p);
  std::vector<std::optional<std::int64_t>> decisions(n);
  for (Pid p = 0; p < n; ++p) {
    if (rig.kset->decided(p)) decisions[p] = rig.kset->outcome(p).value;
  }
  const auto v =
      validate_agreement(t, k, n, proposals, decisions, plan.faulty());
  EXPECT_TRUE(v.ok) << "n=" << n << " k=" << k << " t=" << t
                    << " crashes=" << crashes << " seed=" << seed << " :: "
                    << v.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KSetSweep,
    ::testing::Values(KSetParams{3, 1, 1, 0, 1}, KSetParams{3, 1, 1, 1, 2},
                      KSetParams{4, 1, 2, 2, 3}, KSetParams{4, 2, 2, 1, 4},
                      KSetParams{5, 2, 2, 2, 5}, KSetParams{5, 2, 3, 3, 6},
                      KSetParams{5, 1, 2, 1, 7}, KSetParams{6, 3, 3, 3, 8},
                      KSetParams{6, 2, 4, 2, 9},
                      KSetParams{6, 1, 1, 1, 10}));

TEST(KSetTest, DecisionsSurviveWinnersetCrash) {
  // Crash the initial winnerset {0} immediately: instance 0's initial
  // leader is gone; the detector must move the winnerset and another
  // ballot must carry. k = 1, t = 2, n = 4.
  KSetRig rig(4, 1, 2);
  const sched::CrashPlan plan = sched::CrashPlan::at(4, ProcSet::of(0), 0);
  rig.sim->use_crash_plan(plan);
  auto base = std::make_unique<sched::UniformRandomGenerator>(4, 11);
  std::vector<sched::TimelinessConstraint> constraints{
      sched::TimelinessConstraint(ProcSet::of(1), ProcSet::of({1, 2, 3}),
                                  3)};
  sched::EnforcedGenerator gen(std::move(base), std::move(constraints),
                               plan);
  const ProcSet correct = ProcSet::of({1, 2, 3});
  rig.sim->run_until(gen, 2'000'000,
                     [&] { return rig.kset->all_decided(correct); });
  EXPECT_TRUE(rig.kset->all_decided(correct));
  const auto values = rig.kset->distinct_decisions(correct);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_NE(values[0], 100);  // process 0 never ran: its value cannot win
}

}  // namespace
}  // namespace setlib::agreement
