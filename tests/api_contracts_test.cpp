// Precondition coverage across the public API: a library release
// should fail loudly and precisely on misuse, not corrupt state.
#include <gtest/gtest.h>

#include "src/agreement/kset.h"
#include "src/agreement/paxos.h"
#include "src/agreement/trivial.h"
#include "src/bg/bg_sim.h"
#include "src/bg/threads.h"
#include "src/core/engine.h"
#include "src/fd/kantiomega.h"
#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/simulator.h"
#include "src/shm/snapshot.h"
#include "src/util/assert.h"

namespace setlib {
namespace {

TEST(ApiContracts, ScheduleLayer) {
  EXPECT_THROW(sched::Schedule(0), ContractViolation);
  EXPECT_THROW(sched::Schedule(64), ContractViolation);
  EXPECT_THROW(sched::RoundRobinGenerator(0), ContractViolation);
  EXPECT_THROW(sched::UniformRandomGenerator(0, 1), ContractViolation);
  EXPECT_THROW(sched::WeightedRandomGenerator({}, 1), ContractViolation);
  EXPECT_THROW(
      sched::RotatingStarverGenerator(3, ProcSet(), ProcSet::of(1), 1),
      ContractViolation);
  EXPECT_THROW(
      sched::RotatingStarverGenerator(3, ProcSet::of(0), ProcSet(), 0),
      ContractViolation);

  const sched::Schedule s(2, {0, 1});
  EXPECT_THROW(sched::min_timeliness_bound(s, ProcSet::of(0),
                                           ProcSet::of(1), 0, 3),
               ContractViolation);
  const sched::SystemMembership membership(s);
  EXPECT_THROW(membership.best_pair(0, 1), ContractViolation);
  EXPECT_THROW(membership.best_pair(1, 3), ContractViolation);
  EXPECT_THROW(membership.find_witness(1, 1, 0), ContractViolation);
}

TEST(ApiContracts, EnforcerLayer) {
  auto mk_base = [] {
    return std::make_unique<sched::UniformRandomGenerator>(3, 1);
  };
  // bound < 1
  EXPECT_THROW(sched::EnforcedGenerator::single(
                   mk_base(), sched::TimelinessConstraint(
                                  ProcSet::of(0), ProcSet::of(1), 0)),
               ContractViolation);
  // empty timely set
  EXPECT_THROW(sched::EnforcedGenerator::single(
                   mk_base(), sched::TimelinessConstraint(
                                  ProcSet(), ProcSet::of(1), 2)),
               ContractViolation);
  // sets outside the universe
  EXPECT_THROW(sched::EnforcedGenerator::single(
                   mk_base(), sched::TimelinessConstraint(
                                  ProcSet::of(5), ProcSet::of(1), 2)),
               ContractViolation);
  // null base
  EXPECT_THROW(sched::EnforcedGenerator::single(
                   nullptr, sched::TimelinessConstraint(
                                ProcSet::of(0), ProcSet::of(1), 2)),
               ContractViolation);
}

TEST(ApiContracts, ShmLayer) {
  shm::SimMemory mem;
  EXPECT_THROW(mem.read(0), ContractViolation);
  EXPECT_THROW(mem.write(-1, shm::Value()), ContractViolation);
  EXPECT_THROW(mem.alloc_array("a", 0), ContractViolation);

  shm::Simulator sim(mem, 2);
  EXPECT_THROW(sim.process(2), ContractViolation);
  EXPECT_THROW(sim.crash(-1), ContractViolation);
  sched::RoundRobinGenerator wrong_n(3);
  EXPECT_THROW(sim.run(wrong_n, 10), ContractViolation);

  EXPECT_THROW(shm::AtomicSnapshot(mem, 0, "s"), ContractViolation);
  shm::AtomicSnapshot snap(mem, 2, "s");
  EXPECT_THROW(snap.segment_reg(2), ContractViolation);
  std::vector<std::int64_t> out;
  EXPECT_THROW(snap.scan(-1, &out), ContractViolation);
}

TEST(ApiContracts, DetectorLayer) {
  shm::SimMemory mem;
  fd::KAntiOmega det(mem, {4, 2, 2, 1});
  EXPECT_THROW(det.view(4), ContractViolation);
  EXPECT_THROW(det.counter_reg(-1, 0), ContractViolation);
  EXPECT_THROW(det.counter_reg(0, 4), ContractViolation);
  EXPECT_THROW(det.heartbeat_reg(4), ContractViolation);
  EXPECT_THROW(det.stabilized(ProcSet(), 4), ContractViolation);
  EXPECT_THROW(det.stabilized(ProcSet::of(0), 0), ContractViolation);
  EXPECT_THROW(det.trusted_candidates(ProcSet::of(0), 0),
               ContractViolation);
  EXPECT_THROW(det.run(7), ContractViolation);
}

TEST(ApiContracts, AgreementLayer) {
  shm::SimMemory mem;
  agreement::PaxosConsensus paxos(mem, 3, "px");
  agreement::PaxosConsensus::Status status;
  EXPECT_THROW(paxos.run(3, 1, [](Pid) { return 0; }, &status),
               ContractViolation);
  EXPECT_THROW(paxos.run(0, 1, nullptr, &status), ContractViolation);
  EXPECT_THROW(paxos.run(0, 1, [](Pid) { return 0; }, nullptr),
               ContractViolation);
  EXPECT_THROW(paxos.block_reg(3), ContractViolation);

  EXPECT_THROW(agreement::TrivialAgreement(mem, 3, 3), ContractViolation);
  agreement::TrivialAgreement trivial(mem, 3, 1);
  EXPECT_THROW(trivial.run(0, 1, nullptr), ContractViolation);
}

TEST(ApiContracts, BgLayer) {
  shm::SimMemory mem;
  bg::SafeAgreement sa(mem, 3, "sa");
  EXPECT_THROW(sa.cell_reg(3), ContractViolation);
  EXPECT_THROW(sa.propose(-1, shm::Value::of(1)), ContractViolation);

  EXPECT_THROW(
      bg::BGSimulation(mem, bg::BGSimulation::Params{0, 3, 4}, nullptr),
      ContractViolation);
  EXPECT_THROW(
      bg::BGSimulation(mem, bg::BGSimulation::Params{2, 3, 0},
                       [](int) {
                         return std::make_unique<bg::ForeverThread>(0);
                       }),
      ContractViolation);
}

TEST(ApiContracts, EngineLayer) {
  core::RunConfig cfg;
  cfg.spec = {2, 1, 4};
  cfg.system = {1, 3, 5};  // n mismatch
  EXPECT_THROW(core::run_agreement(cfg), ContractViolation);

  cfg.system = {1, 3, 4};
  cfg.max_steps = 0;
  EXPECT_THROW(core::run_agreement(cfg), ContractViolation);

  cfg.max_steps = 1'000;
  cfg.proposals = {1, 2};  // wrong size
  EXPECT_THROW(core::run_agreement(cfg), ContractViolation);

  // Rotisserie family requires gap <= t.
  core::RunConfig rot;
  rot.spec = {1, 1, 5};
  rot.system = {1, 4, 5};  // gap 3 > t = 1
  rot.family = core::ScheduleFamily::kRotisserie;
  EXPECT_THROW(core::run_agreement(rot), ContractViolation);
}

}  // namespace
}  // namespace setlib
