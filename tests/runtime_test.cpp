// The threaded runtime: RtMemory linearizable registers, Pacer
// semantics, the ThreadedExecutor, and the end-to-end threaded
// Theorem 24 stack.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/runtime/executor.h"
#include "src/runtime/pacer.h"
#include "src/runtime/rt_harness.h"
#include "src/runtime/rt_memory.h"
#include "src/sched/analyzer.h"
#include "src/util/assert.h"

namespace setlib::runtime {
namespace {

TEST(RtMemoryTest, BasicReadWrite) {
  RtMemory mem;
  const shm::RegisterId r = mem.alloc("r");
  EXPECT_TRUE(mem.read(r).is_nil());
  mem.write(r, shm::Value::of(3));
  EXPECT_EQ(mem.read(r).as_int_or(0), 3);
  EXPECT_EQ(mem.read_count(), 2);
  EXPECT_EQ(mem.write_count(), 1);
}

TEST(RtMemoryTest, FreezeForbidsAlloc) {
  RtMemory mem;
  mem.alloc("a");
  mem.freeze();
  EXPECT_THROW(mem.alloc("b"), ContractViolation);
}

TEST(RtMemoryTest, ConcurrentReadersWritersKeepValuesIntact) {
  // Writers store multi-word values; readers must never observe a torn
  // tuple (each register is mutex-protected).
  RtMemory mem;
  const shm::RegisterId r = mem.alloc("r");
  mem.write(r, shm::Value::of(0, 0));
  mem.freeze();
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  {
    std::vector<std::jthread> workers;
    for (int w = 0; w < 2; ++w) {
      workers.emplace_back([&, w] {
        for (std::int64_t x = 1; !stop.load(); ++x) {
          mem.write(r, shm::Value::of(x + w * 1'000'000,
                                      x + w * 1'000'000));
        }
      });
    }
    for (int rd = 0; rd < 2; ++rd) {
      workers.emplace_back([&] {
        while (!stop.load()) {
          const shm::Value v = mem.read(r);
          if (v.at(0) != v.at(1)) torn.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
  }
  EXPECT_EQ(torn.load(), 0);
}

TEST(PacerTest, AllowsUpToBoundThenBlocks) {
  // Constraint: {0} timely w.r.t. {1} at bound 3. Thread for pid 1 can
  // take 2 steps, then must wait until pid 0 steps.
  Pacer pacer(2, {sched::TimelinessConstraint(ProcSet::of(0),
                                              ProcSet::of(1), 3)});
  EXPECT_TRUE(pacer.step(1));
  EXPECT_TRUE(pacer.step(1));
  std::atomic<bool> third_done{false};
  std::jthread q_thread([&] {
    EXPECT_TRUE(pacer.step(1));  // blocks until pid 0 steps
    third_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_done.load());
  EXPECT_TRUE(pacer.step(0));
  q_thread.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(pacer.steps_taken(), 4);

  const sched::Schedule s = pacer.recorded_schedule();
  EXPECT_LE(sched::min_timeliness_bound(s, ProcSet::of(0), ProcSet::of(1)),
            3);
}

TEST(PacerTest, DeactivatingTimelySetDropsConstraint) {
  Pacer pacer(2, {sched::TimelinessConstraint(ProcSet::of(0),
                                              ProcSet::of(1), 2)});
  EXPECT_TRUE(pacer.step(1));
  std::atomic<bool> second_done{false};
  std::jthread q_thread([&] {
    EXPECT_TRUE(pacer.step(1));
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  pacer.deactivate(0);  // P gone: constraint dropped, waiter released
  q_thread.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(pacer.dropped_constraints(), 1);
}

TEST(PacerTest, RequestStopReleasesWaiters) {
  Pacer pacer(2, {sched::TimelinessConstraint(ProcSet::of(0),
                                              ProcSet::of(1), 1)});
  std::atomic<bool> returned_false{false};
  std::jthread q_thread([&] {
    // bound 1: pid 1 (in Q \ P) can never step before pid 0.
    if (!pacer.step(1)) returned_false.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pacer.request_stop();
  q_thread.join();
  EXPECT_TRUE(returned_false.load());
  EXPECT_TRUE(pacer.stopped());
}

TEST(RtHarnessTest, ConsensusOnThreads) {
  RtRunConfig cfg;
  cfg.n = 4;
  cfg.k = 1;
  cfg.t = 2;
  const auto report = run_kset_threaded(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.distinct_decisions, 1);
  EXPECT_LE(report.witness_bound, cfg.bound);
  EXPECT_EQ(report.dropped_constraints, 0);
}

TEST(RtHarnessTest, KSetWithCrashes) {
  RtRunConfig cfg;
  cfg.n = 5;
  cfg.k = 2;
  cfg.t = 2;
  cfg.crash_count = 2;
  cfg.crash_ops = 1'000;
  const auto report = run_kset_threaded(cfg);
  EXPECT_TRUE(report.success) << report.detail;
  EXPECT_EQ(report.faulty.size(), 2);
  EXPECT_LE(report.distinct_decisions, 2);
}

TEST(RtHarnessTest, CrashesNeverRaceDecisionTime) {
  // Regression for the KSetWithCrashes flake: the run used to end as
  // soon as every process decided, so whether a crash_ops=1000 crash
  // ever fired depended on how far the OS had let that thread run —
  // frequent failures under ASan on many-core boxes. The executor now
  // refuses to settle while a crash is pending, so the faulty set is
  // exactly the configured one on every run.
  for (int round = 0; round < 5; ++round) {
    RtRunConfig cfg;
    cfg.n = 5;
    cfg.k = 2;
    cfg.t = 2;
    cfg.crash_count = 2;
    cfg.crash_ops = 1'000;
    const auto report = run_kset_threaded(cfg);
    EXPECT_TRUE(report.success) << "round " << round << ": "
                                << report.detail;
    EXPECT_EQ(report.faulty, ProcSet::of({3, 4})) << "round " << round;
  }
}

TEST(RtHarnessTest, CrashedTimelySetReportsOnlyPacedStats) {
  // The whole pacer timely set ({0}, k = 1) crashes before taking a
  // single step: the constraint is dropped at (or within bound - 1
  // steps of) serialized step 0 and the rest of the run is unpaced.
  // pacer_steps and witness_bound must describe only the paced prefix
  // — not the thousands of unpaced steps the survivors go on to take.
  RtRunConfig cfg;
  cfg.n = 3;
  cfg.k = 1;
  cfg.t = 2;
  cfg.crashes = {{0, 0}};  // pid 0 never reaches the pacer
  cfg.max_ops_per_process = 4'000;
  cfg.max_wall = std::chrono::milliseconds(5'000);
  const auto report = run_kset_threaded(cfg);
  EXPECT_EQ(report.faulty, ProcSet::of(0));
  EXPECT_EQ(report.dropped_constraints, 1);
  // Before the drop at most bound - 1 = 3 observed steps can pass.
  EXPECT_LE(report.pacer_steps, cfg.bound - 1);
  EXPECT_LE(report.witness_bound, cfg.bound);
}

TEST(RtHarnessTest, ImmediateCrashesStillTerminate) {
  RtRunConfig cfg;
  cfg.n = 4;
  cfg.k = 2;
  cfg.t = 2;
  cfg.crash_count = 2;
  cfg.crash_ops = 0;  // crash before taking any step
  const auto report = run_kset_threaded(cfg);
  EXPECT_TRUE(report.success) << report.detail;
}

class RtSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RtSweep, ThreadedStackSolves) {
  const auto [n, k, t] = GetParam();
  RtRunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.t = t;
  cfg.crash_count = t >= 2 ? 1 : 0;
  cfg.crash_ops = 3'000;
  const auto report = run_kset_threaded(cfg);
  EXPECT_TRUE(report.success)
      << "n=" << n << " k=" << k << " t=" << t << " :: " << report.detail;
  EXPECT_LE(report.distinct_decisions, k);
}

INSTANTIATE_TEST_SUITE_P(Grid, RtSweep,
                         ::testing::Values(std::tuple{3, 1, 1},
                                           std::tuple{4, 1, 2},
                                           std::tuple{4, 2, 2},
                                           std::tuple{5, 2, 3},
                                           std::tuple{6, 3, 3}));

}  // namespace
}  // namespace setlib::runtime
