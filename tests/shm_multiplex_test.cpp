// Fidelity of the process multiplexing layer: the Lemma 9 argument
// ("each loop iteration has a bounded number of steps") requires that
// round-robin task multiplexing dilute a process's per-task step rate
// by at most the task count — no task may be starved by its siblings.
#include <gtest/gtest.h>

#include "src/sched/analyzer.h"
#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/shm/program.h"
#include "src/shm/simulator.h"

namespace setlib::shm {
namespace {

Prog counter_loop(RegisterId reg) {
  for (std::int64_t v = 1;; ++v) {
    co_await write(reg, Value::of(v));
  }
}

TEST(MultiplexTest, TasksShareStepsFairly) {
  // 4 infinite tasks in one process: after S steps, each task must
  // have executed S/4 ops exactly (round-robin, one op per step).
  SimMemory mem;
  std::vector<RegisterId> regs;
  ProcessRuntime proc(0);
  for (int i = 0; i < 4; ++i) {
    regs.push_back(mem.alloc(std::string("r").append(std::to_string(i))));
    proc.add_task(counter_loop(regs.back()), "ctr");
  }
  for (int s = 0; s < 400; ++s) proc.step(mem);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mem.peek(regs[static_cast<std::size_t>(i)]).as_int_or(0), 100)
        << "task " << i;
  }
}

TEST(MultiplexTest, UnevenTaskOpCountsStillInterleave) {
  // A task doing 3-op transactions next to a 1-op task: the RR
  // multiplexer alternates single OPS, not whole transactions.
  SimMemory mem;
  const RegisterId a = mem.alloc("a");
  const RegisterId b = mem.alloc("b");
  auto three_op = [](RegisterId r1, RegisterId r2) -> Prog {
    for (;;) {
      co_await write(r1, Value::of(1));
      (void)co_await read(r2);
      (void)co_await read(r1);
    }
  };
  ProcessRuntime proc(0);
  proc.add_task(three_op(a, b), "tri");
  proc.add_task(counter_loop(b), "ctr");
  for (int s = 0; s < 100; ++s) proc.step(mem);
  // After 100 steps, the 1-op task got 50 steps = value 50.
  EXPECT_EQ(mem.peek(b).as_int_or(0), 50);
}

TEST(MultiplexTest, TimelinessDilutedByAtMostTaskCount) {
  // The Lemma 9 constant-factor claim, measured: enforce {0} timely
  // w.r.t. {1} at bound B on the *process* schedule; with m tasks per
  // process, the per-task step rate drops by exactly m, so a per-task
  // "operation schedule" built from task-0 ops only still satisfies a
  // bound <= m * B (here checked at equality granularity <=).
  const int n = 2;
  const std::int64_t bound = 4;
  const int tasks = 3;
  SimMemory mem;
  std::vector<RegisterId> regs;
  Simulator sim(mem, n);
  for (Pid p = 0; p < n; ++p) {
    for (int i = 0; i < tasks; ++i) {
      std::string name("r");
      name.append(std::to_string(p)).append("_").append(
          std::to_string(i));
      regs.push_back(mem.alloc(std::move(name)));
      sim.process(p).add_task(counter_loop(regs.back()), "ctr");
    }
  }
  auto base = std::make_unique<sched::UniformRandomGenerator>(n, 11);
  auto gen = sched::EnforcedGenerator::single(
      std::move(base),
      sched::TimelinessConstraint(ProcSet::of(0), ProcSet::of(1), bound));
  sim.run(*gen, 30'000);

  // Process-level witness holds at the configured bound...
  EXPECT_LE(sched::min_timeliness_bound(sim.executed(), ProcSet::of(0),
                                        ProcSet::of(1)),
            bound);
  // ...and each process's per-task progress is its step count / tasks
  // (so any per-task notion of timeliness is diluted by exactly m).
  const std::int64_t steps0 = sim.executed().count(0);
  const std::int64_t ops0 = mem.peek(regs[0]).as_int_or(0);
  // Round-robin: the first task gets ceil(steps/tasks) ops.
  EXPECT_GE(ops0, steps0 / tasks);
  EXPECT_LE(ops0, steps0 / tasks + 1);
}

TEST(MultiplexTest, HaltedSiblingDoesNotConsumeSlots) {
  SimMemory mem;
  const RegisterId a = mem.alloc("a");
  const RegisterId b = mem.alloc("b");
  auto finite = [](RegisterId r) -> Prog {
    co_await write(r, Value::of(7));
  };
  ProcessRuntime proc(0);
  proc.add_task(finite(a), "once");
  proc.add_task(counter_loop(b), "ctr");
  for (int s = 0; s < 21; ++s) proc.step(mem);
  // First step goes to the finite task, all 20 remaining to the loop.
  EXPECT_EQ(mem.peek(a).as_int_or(0), 7);
  EXPECT_EQ(mem.peek(b).as_int_or(0), 20);
}

}  // namespace
}  // namespace setlib::shm
