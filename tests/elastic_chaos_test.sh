#!/bin/sh
# End-to-end elastic chaos: orchestrate a real bench at N=3 workers,
# SIGKILL one worker mid-run through the chaos transport, and assert
# the merged document is still bit-identical (modulo timing keys) to
# the unsharded run, with the murdered worker's lease resharded.
#
#   elastic_chaos_test.sh <sweep_orchestrator> <bench> <check_shard_union.py>
#
# The delay-0 kill races the bench's own (few-ms) runtime, so a kill
# can occasionally miss — the orchestration is retried until a kill
# lands (the merge must be bit-identical on every attempt either way).
set -eu

ORCH=$1
BENCH=$2
CHECK=$3

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

"$BENCH" --threads=2 --json=FULL.json --benchmark_list_tests > /dev/null

attempt=1
while :; do
  "$ORCH" "$BENCH" --workers=3 --ranges=9 \
    --chaos-kill-nth=2 --chaos-kill-delay-ms=0 \
    --out=MERGED.json -- --threads=2 --benchmark_list_tests

  # Every attempt, killed or not, must merge bit-identical.
  python3 "$CHECK" FULL.json --merged MERGED.json

  if python3 -c '
import json, sys
orch = json.load(open("MERGED.json"))["orchestration"]
sys.exit(0 if orch["leases_failed"] >= 1 and orch["leases_resharded"] >= 1
         else 1)
'; then
    echo "elastic_chaos_test: kill landed on attempt $attempt;" \
         "lease resharded and merge stayed bit-identical"
    exit 0
  fi

  if [ "$attempt" -ge 10 ]; then
    echo "elastic_chaos_test: chaos kill never landed in $attempt runs" >&2
    exit 1
  fi
  attempt=$((attempt + 1))
done
