// ArenaAllocator's determinism contract (src/util/arena.h): counters
// track upstream overflow traffic only, reset() trims back to the
// just-constructed shape, FrameScope rewinds LIFO and frees frame
// blocks — so the counter deltas of a request sequence are a pure
// function of (sequence, reserve size).
#include "src/util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace setlib::util {
namespace {

TEST(ArenaTest, ReserveFitsWithoutUpstreamTraffic) {
  ArenaAllocator arena(4096);
  EXPECT_EQ(arena.allocs(), 0);
  EXPECT_EQ(arena.bytes(), 0);
  for (int i = 0; i < 16; ++i) {
    void* p = arena.allocate(128);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 128);  // the memory is really writable
  }
  // 16 * 128 = 2048 <= 4096: everything fit in the eager reserve.
  EXPECT_EQ(arena.allocs(), 0);
  EXPECT_EQ(arena.bytes(), 0);
  EXPECT_EQ(arena.in_use(), 2048u);
  EXPECT_EQ(arena.high_water(), 2048u);
}

TEST(ArenaTest, AlignmentIsHonored) {
  ArenaAllocator arena(4096);
  arena.allocate(1);  // misalign the bump offset
  // kMaxAlign (64) is the ceiling; block bases are pre-aligned to it.
  for (const std::size_t align : {2u, 8u, 16u, 32u, 64u}) {
    void* p = arena.allocate(16, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, OverflowIsCountedAndDeterministic) {
  ArenaAllocator arena(1024);
  arena.allocate(1024);  // fills the reserve exactly
  EXPECT_EQ(arena.allocs(), 0);
  arena.allocate(64);  // forces one overflow block
  EXPECT_EQ(arena.allocs(), 1);
  const std::int64_t first_bytes = arena.bytes();
  EXPECT_GE(first_bytes, 64);

  // The same sequence on a fresh arena of the same reserve produces
  // the same counters — the pure-function claim.
  ArenaAllocator twin(1024);
  twin.allocate(1024);
  twin.allocate(64);
  EXPECT_EQ(twin.allocs(), arena.allocs());
  EXPECT_EQ(twin.bytes(), arena.bytes());
}

TEST(ArenaTest, ResetRestoresTheJustConstructedShape) {
  ArenaAllocator arena(512);
  // Burst past the reserve: several overflow blocks.
  for (int i = 0; i < 8; ++i) arena.allocate(512);
  const std::int64_t allocs_after_burst = arena.allocs();
  EXPECT_GT(allocs_after_burst, 0);

  // After reset, an identical burst acquires exactly the same number
  // of upstream blocks again — reset really returned the overflow
  // blocks instead of keeping them warm.
  arena.reset();
  EXPECT_EQ(arena.in_use(), 0u);
  for (int i = 0; i < 8; ++i) arena.allocate(512);
  EXPECT_EQ(arena.allocs(), 2 * allocs_after_burst);
}

TEST(ArenaTest, CountersAreMonotoneAcrossResetAndRewind) {
  ArenaAllocator arena(256);
  arena.allocate(1024);  // overflow
  const std::int64_t allocs = arena.allocs();
  const std::int64_t bytes = arena.bytes();
  arena.reset();
  // Freeing never un-counts.
  EXPECT_EQ(arena.allocs(), allocs);
  EXPECT_EQ(arena.bytes(), bytes);
}

TEST(ArenaTest, ReuseWithinReserveNeverReallocates) {
  // The steady-state claim: a per-cell loop that resets and re-runs a
  // fitting workload reports a zero delta every cell.
  ArenaAllocator arena(1 << 16);
  for (int cell = 0; cell < 50; ++cell) {
    arena.reset();
    const std::int64_t before = arena.allocs();
    for (int i = 0; i < 32; ++i) arena.alloc_array<std::uint64_t>(128);
    EXPECT_EQ(arena.allocs() - before, 0) << "cell " << cell;
  }
}

TEST(ArenaTest, FrameScopeRewindsTheBumpOffset) {
  ArenaAllocator arena(4096);
  arena.allocate(100);
  const std::size_t outer = arena.in_use();
  void* first = nullptr;
  {
    const FrameScope frame(arena);
    first = arena.allocate(200);
    EXPECT_GT(arena.in_use(), outer);
  }
  EXPECT_EQ(arena.in_use(), outer);
  // The next allocation reuses the rewound region.
  EXPECT_EQ(arena.allocate(200), first);
}

TEST(ArenaTest, FrameScopeFreesFrameOverflowBlocks) {
  ArenaAllocator arena(256);
  const std::int64_t before = arena.allocs();
  {
    const FrameScope frame(arena);
    arena.allocate(4096);  // overflow inside the frame
    EXPECT_EQ(arena.allocs(), before + 1);
  }
  // Re-entering an identical frame acquires a fresh block: the frame's
  // blocks went back to the heap on rewind (so repeated frames are
  // reproducible), and the counter stays monotone.
  {
    const FrameScope frame(arena);
    arena.allocate(4096);
    EXPECT_EQ(arena.allocs(), before + 2);
  }
}

TEST(ArenaTest, NestedFramesRewindLifo) {
  ArenaAllocator arena(4096);
  const std::size_t base = arena.in_use();
  {
    const FrameScope outer_frame(arena);
    arena.allocate(64);
    const std::size_t mid = arena.in_use();
    {
      const FrameScope inner_frame(arena);
      arena.allocate(64);
      EXPECT_GT(arena.in_use(), mid);
    }
    EXPECT_EQ(arena.in_use(), mid);
  }
  EXPECT_EQ(arena.in_use(), base);
}

TEST(ArenaTest, HighWaterTracksThePeak) {
  ArenaAllocator arena(1 << 16);
  {
    const FrameScope frame(arena);
    arena.allocate(5000);
  }
  arena.allocate(100);
  EXPECT_GE(arena.high_water(), 5000u);  // peak survives the rewind
}

TEST(ArenaTest, AllocArrayIsTypedAndAligned) {
  ArenaAllocator arena(4096);
  arena.allocate(1);
  std::uint64_t* words = arena.alloc_array<std::uint64_t>(8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) %
                alignof(std::uint64_t),
            0u);
  for (int i = 0; i < 8; ++i) words[i] = 42;  // writable
}

}  // namespace
}  // namespace setlib::util
