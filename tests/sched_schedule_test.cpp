#include "src/sched/schedule.h"

#include <gtest/gtest.h>

#include "src/util/assert.h"

namespace setlib::sched {
namespace {

TEST(ScheduleTest, AppendAndIndex) {
  Schedule s(3);
  EXPECT_TRUE(s.empty());
  s.append(0);
  s.append(2);
  s.append(1);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 2);
  EXPECT_EQ(s[2], 1);
}

TEST(ScheduleTest, RejectsOutOfRangePids) {
  Schedule s(2);
  EXPECT_THROW(s.append(2), ContractViolation);
  EXPECT_THROW(s.append(-1), ContractViolation);
  EXPECT_THROW((Schedule(2, {0, 1, 2})), ContractViolation);
}

TEST(ScheduleTest, CountsPerProcessAndSet) {
  const Schedule s(3, {0, 1, 0, 2, 0, 1});
  EXPECT_EQ(s.count(0), 3);
  EXPECT_EQ(s.count(1), 2);
  EXPECT_EQ(s.count(2), 1);
  EXPECT_EQ(s.count(0, 1, 4), 1);  // window [1,4) = 1,0,2
  EXPECT_EQ(s.count_set(ProcSet::of({0, 2})), 4);
  EXPECT_EQ(s.count_set(ProcSet::of({1, 2}), 0, 3), 1);
}

TEST(ScheduleTest, AppearingFrom) {
  const Schedule s(4, {0, 1, 2, 1, 1});
  EXPECT_EQ(s.appearing(), ProcSet::of({0, 1, 2}));
  EXPECT_EQ(s.appearing_from(3), ProcSet::of({1}));
  EXPECT_EQ(s.appearing_from(5), ProcSet());
}

TEST(ScheduleTest, ConcatPreservesOrder) {
  const Schedule a(2, {0, 1});
  const Schedule b(2, {1, 1});
  const Schedule c = a.concat(b);
  ASSERT_EQ(c.size(), 4);
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[3], 1);
}

TEST(ScheduleTest, HashIsStableAndOrderSensitive) {
  const Schedule s(3, {0, 1, 2});
  EXPECT_EQ(schedule_hash(s), schedule_hash(Schedule(3, {0, 1, 2})));
  // Same multiset of pids, different order: the chain must diverge, or
  // equal hashes would no longer mean bit-identical executions.
  EXPECT_NE(schedule_hash(s), schedule_hash(Schedule(3, {2, 1, 0})));
  EXPECT_NE(schedule_hash(s), schedule_hash(Schedule(3, {1, 0, 2})));
  // n and length are folded in too.
  EXPECT_NE(schedule_hash(s), schedule_hash(Schedule(4, {0, 1, 2})));
  EXPECT_NE(schedule_hash(s), schedule_hash(Schedule(3, {0, 1, 2, 2})));
  EXPECT_NE(schedule_hash(Schedule(2)), schedule_hash(Schedule(3)));
}

TEST(ScheduleTest, SliceIsHalfOpen) {
  const Schedule s(3, {0, 1, 2, 0, 1});
  const Schedule mid = s.slice(1, 4);
  ASSERT_EQ(mid.size(), 3);
  EXPECT_EQ(mid[0], 1);
  EXPECT_EQ(mid[2], 0);
  EXPECT_EQ(s.slice(2, 2).size(), 0);
  EXPECT_THROW(s.slice(3, 2), ContractViolation);
}

}  // namespace
}  // namespace setlib::sched
