// Differential coverage for the word-packed analyzer core: the packed
// scan, the incremental BoundTracker, and the batched RankedPairScan
// must be bit-identical to min_timeliness_bound_reference (the
// original per-step scan, kept as the executable spec) on randomized
// schedules, and the P-rank range splits must compose.
#include "src/sched/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "src/sched/enforcer.h"
#include "src/sched/generators.h"
#include "src/util/rng.h"

namespace setlib::sched {
namespace {

// A randomized schedule drawn from one of the repo's generator shapes.
Schedule random_schedule(Rng& rng, int n, std::int64_t len) {
  const int shape = static_cast<int>(rng.next_below(4));
  switch (shape) {
    case 0: {
      UniformRandomGenerator gen(n, rng.next_u64());
      return generate(gen, len);
    }
    case 1: {
      std::vector<double> weights;
      for (int p = 0; p < n; ++p) {
        weights.push_back(rng.next_double() < 0.3 ? 0.05 : 1.0);
      }
      weights[0] = 1.0;  // not all ~0
      WeightedRandomGenerator gen(std::move(weights), rng.next_u64());
      return generate(gen, len);
    }
    case 2: {
      RoundRobinGenerator gen(n);
      return generate(gen, len);
    }
    default: {
      KSubsetStarverGenerator gen(
          n, ProcSet::universe(n),
          1 + static_cast<int>(
                  rng.next_below(static_cast<std::uint64_t>(n - 1))),
          1 + rng.next_in(0, 8));
      return generate(gen, len);
    }
  }
}

ProcSet random_set(Rng& rng, int n) {
  ProcSet s;
  for (Pid p = 0; p < n; ++p) {
    if (rng.next_bool(0.4)) s = s.with(p);
  }
  return s;
}

TEST(PackedEquivalenceTest, RandomizedBoundsBitIdentical) {
  // The acceptance suite: 1000 randomized schedules, packed vs
  // reference, including word-boundary lengths and random [from, to)
  // windows.
  Rng rng(2024);
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(23));  // up to 24
    std::int64_t len = rng.next_in(0, 400);
    if (trial % 7 == 0) len = 64 * rng.next_in(0, 4);   // word-aligned
    if (trial % 11 == 0) len = 63 + rng.next_in(0, 3);  // straddling
    const Schedule s = random_schedule(rng, n, len);
    const ProcSet p = random_set(rng, n);
    const ProcSet q = random_set(rng, n);
    EXPECT_EQ(min_timeliness_bound(s, p, q),
              min_timeliness_bound_reference(s, p, q))
        << "n=" << n << " len=" << len << " p=" << p.to_string()
        << " q=" << q.to_string();
    if (len > 0) {
      const std::int64_t from = rng.next_in(0, len);
      const std::int64_t to = rng.next_in(from, len);
      EXPECT_EQ(min_timeliness_bound(s, p, q, from, to),
                min_timeliness_bound_reference(s, p, q, from, to))
          << "n=" << n << " len=" << len << " [" << from << "," << to
          << ")";
    }
  }
}

TEST(PackedEquivalenceTest, PackedBoundForMatchesReference) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(10));
    const Schedule s = random_schedule(rng, n, rng.next_in(0, 700));
    const PackedSchedule packed(s);
    EXPECT_EQ(packed.n(), n);
    EXPECT_EQ(packed.size(), s.size());
    for (int inner = 0; inner < 8; ++inner) {
      const ProcSet p = random_set(rng, n);
      const ProcSet q = random_set(rng, n);
      EXPECT_EQ(packed.bound_for(p, q),
                min_timeliness_bound_reference(s, p, q));
    }
  }
}

TEST(PackedScheduleTest, ColumnsPartitionTheTimeline) {
  Rng rng(5);
  const Schedule s = random_schedule(rng, 6, 500);
  const PackedSchedule packed(s);
  // Each step sets exactly one column bit; the OR of all columns is
  // the all-steps timeline.
  std::vector<std::uint64_t> all;
  packed.or_columns(ProcSet::universe(6), all);
  for (std::int64_t t = 0; t < s.size(); ++t) {
    for (Pid p = 0; p < 6; ++p) {
      const bool bit =
          (packed.column(p)[t / kBitsPerWord] >> (t % kBitsPerWord)) & 1;
      EXPECT_EQ(bit, s[t] == p);
    }
    EXPECT_TRUE((all[static_cast<std::size_t>(t / kBitsPerWord)] >>
                 (t % kBitsPerWord)) &
                1);
  }
  // Bits past size() stay zero (the window scan relies on it).
  if (s.size() % kBitsPerWord != 0) {
    EXPECT_EQ(all.back() & ~low_word_mask(static_cast<int>(
                               s.size() % kBitsPerWord)),
              0u);
  }
}

TEST(BoundTrackerTest, ExtendMatchesRecomputeAtEveryCut) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(8));
    const Schedule s = random_schedule(rng, n, 600);
    const ProcSet p = random_set(rng, n);
    const ProcSet q = random_set(rng, n);
    BoundTracker tracker(p, q);
    std::int64_t cut = 0;
    while (cut < s.size()) {
      // Random Δ, including 0 (no-op) and word-straddling jumps.
      cut = std::min<std::int64_t>(s.size(), cut + rng.next_in(0, 130));
      tracker.extend(s, cut);
      EXPECT_EQ(tracker.position(), cut);
      EXPECT_EQ(tracker.bound(),
                min_timeliness_bound_reference(s, p, q, 0, cut))
          << "trial=" << trial << " cut=" << cut;
    }
  }
}

TEST(BoundTrackerTest, ChunkingIsIrrelevant) {
  // Two trackers fed the same steps through different chunkings (and
  // one step at a time) agree at every shared position: the state is a
  // function of the consumed prefix only.
  Rng rng(3);
  const Schedule s = random_schedule(rng, 5, 500);
  const ProcSet p = ProcSet::of({0, 2});
  const ProcSet q = ProcSet::of({1, 3, 4});
  BoundTracker word_fed(p, q);
  BoundTracker step_fed(p, q);
  std::int64_t cut = 0;
  while (cut < s.size()) {
    cut = std::min<std::int64_t>(s.size(), cut + rng.next_in(1, 97));
    word_fed.extend(s, cut);
    while (step_fed.position() < cut) {
      step_fed.step(s[step_fed.position()]);
    }
    EXPECT_EQ(word_fed.bound(), step_fed.bound());
  }
  EXPECT_EQ(word_fed.bound(), min_timeliness_bound_reference(s, p, q));
}

TEST(BoundTrackerTest, BoundSeriesUsesOnePass) {
  Rng rng(17);
  const Schedule s = random_schedule(rng, 4, 800);
  const ProcSet p = ProcSet::of(0);
  const ProcSet q = ProcSet::of({1, 2, 3});
  std::vector<std::int64_t> cuts;
  for (std::int64_t c = 0; c <= 800; c += 37) cuts.push_back(c);
  const auto series = bound_series(s, p, q, cuts);
  ASSERT_EQ(series.size(), cuts.size());
  for (std::size_t idx = 0; idx < cuts.size(); ++idx) {
    EXPECT_EQ(series[idx],
              min_timeliness_bound_reference(s, p, q, 0, cuts[idx]));
  }
  // Out-of-order cuts take the per-cut fallback; results must agree.
  std::vector<std::int64_t> shuffled = cuts;
  std::reverse(shuffled.begin(), shuffled.end());
  const auto reversed = bound_series(s, p, q, shuffled);
  for (std::size_t idx = 0; idx < cuts.size(); ++idx) {
    EXPECT_EQ(reversed[idx], series[cuts.size() - 1 - idx]);
  }
}

// The pre-RankedPairScan exhaustive nested loops, kept here as the
// oracle for enumeration order and tie-breaks.
TimelyPair best_pair_oracle(const Schedule& s, int i, int j) {
  TimelyPair best{ProcSet(), ProcSet(),
                  std::numeric_limits<std::int64_t>::max()};
  for (ProcSet p : k_subsets(s.n(), i)) {
    for (ProcSet q : k_subsets(s.n(), j)) {
      const std::int64_t b = min_timeliness_bound_reference(s, p, q);
      if (b < best.bound) best = TimelyPair{p, q, b};
    }
  }
  return best;
}

TEST(RankedPairScanTest, BestPairMatchesExhaustiveOracle) {
  Rng rng(41);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));  // 3..6
    const Schedule s = random_schedule(rng, n, 400);
    const PackedSchedule packed(s);
    for (int i = 1; i <= n; ++i) {
      for (int j = 1; j <= n; ++j) {
        const TimelyPair expected = best_pair_oracle(s, i, j);
        const TimelyPair got = RankedPairScan(packed, i, j).best_pair();
        EXPECT_EQ(got.timely_set, expected.timely_set);
        EXPECT_EQ(got.observed_set, expected.observed_set);
        EXPECT_EQ(got.bound, expected.bound);
      }
    }
  }
}

TEST(RankedPairScanTest, WitnessMatchesFirstInEnumerationOrder) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    const Schedule s = random_schedule(rng, n, 300);
    const PackedSchedule packed(s);
    const int i = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(n)));
    const int j = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(n)));
    const std::int64_t cap = rng.next_in(1, 6);
    // Oracle: first pair in k_subsets order at or under the cap.
    std::optional<TimelyPair> expected;
    for (ProcSet p : k_subsets(n, i)) {
      for (ProcSet q : k_subsets(n, j)) {
        const std::int64_t b = min_timeliness_bound_reference(s, p, q);
        if (b <= cap) {
          expected = TimelyPair{p, q, b};
          break;
        }
      }
      if (expected) break;
    }
    const auto got = RankedPairScan(packed, i, j).find_witness(cap);
    ASSERT_EQ(got.has_value(), expected.has_value());
    if (got) {
      EXPECT_EQ(got->timely_set, expected->timely_set);
      EXPECT_EQ(got->observed_set, expected->observed_set);
      EXPECT_EQ(got->bound, expected->bound);
    }
  }
}

TEST(RankedPairScanTest, RangeSplitsCompose) {
  Rng rng(47);
  const int n = 6;
  const Schedule s = random_schedule(rng, n, 500);
  const PackedSchedule packed(s);
  const RankedPairScan scan(packed, 2, 3);
  const std::int64_t total = scan.p_count();
  ASSERT_EQ(total, 15);
  const auto full = scan.count_members(3);
  for (const std::int64_t split : {std::int64_t{0}, std::int64_t{4},
                                   std::int64_t{7}, total}) {
    const auto lo = scan.count_members(3, 0, split);
    const auto hi = scan.count_members(3, split, total);
    EXPECT_EQ(lo.pairs + hi.pairs, full.pairs);
    EXPECT_EQ(lo.members + hi.members, full.members);
    const auto& first = lo.first ? lo.first : hi.first;
    ASSERT_EQ(first.has_value(), full.first.has_value());
    if (full.first) {
      EXPECT_EQ(first->timely_set, full.first->timely_set);
      EXPECT_EQ(first->observed_set, full.first->observed_set);
      EXPECT_EQ(first->bound, full.first->bound);
    }
  }
}

TEST(RankedPairScanTest, LargeNWitnessSmoke) {
  // n = 24: an enforced witness must be found at its bound; the
  // i-subset starver must leave no witness under a small cap. This is
  // the large-n path the fig2 bench sweeps, kept small enough for the
  // ASan job.
  const int n = 24;
  auto enforced = EnforcedGenerator::single(
      std::make_unique<UniformRandomGenerator>(n, 11),
      TimelinessConstraint(ProcSet::range(0, 2), ProcSet::range(0, 23),
                           3));
  const Schedule good = generate(*enforced, 20'000);
  const SystemMembership membership(good);
  const auto witness = membership.find_witness(2, 23, 3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_LE(witness->bound, 3);
  EXPECT_EQ(min_timeliness_bound_reference(good, witness->timely_set,
                                           witness->observed_set),
            witness->bound);

  KSubsetStarverGenerator starver(n, ProcSet::universe(n), 2, 64);
  const Schedule bad = generate(starver, 20'000);
  const PackedSchedule packed(bad);
  // Every 2-set is starved for stretches far beyond the cap, so the
  // exhaustive C(24,2) x C(24,23) census finds nothing.
  const auto census = RankedPairScan(packed, 2, 23).count_members(3);
  EXPECT_EQ(census.pairs, 276 * 24);
  EXPECT_EQ(census.members, 0);
}

}  // namespace
}  // namespace setlib::sched
