// Unit tests for the shared-memory substrate: values, memory, coroutine
// programs, process runtimes, and the simulator.
#include <gtest/gtest.h>

#include "src/sched/generators.h"
#include "src/shm/memory.h"
#include "src/shm/process.h"
#include "src/shm/program.h"
#include "src/shm/simulator.h"
#include "src/util/assert.h"

namespace setlib::shm {
namespace {

TEST(ValueTest, NilAndFields) {
  const Value nil;
  EXPECT_TRUE(nil.is_nil());
  EXPECT_EQ(nil.as_int_or(-7), -7);
  EXPECT_EQ(nil.at_or(3, 9), 9);

  const Value v = Value::of(1, 2, 3);
  EXPECT_FALSE(v.is_nil());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0), 1);
  EXPECT_EQ(v.at(2), 3);
  EXPECT_EQ(v.at_or(5, -1), -1);
  EXPECT_THROW(v.at(3), ContractViolation);
}

TEST(ValueTest, EqualityAndPrinting) {
  EXPECT_EQ(Value::of(4), Value{4});
  EXPECT_NE(Value::of(4), Value::of(4, 0));
  EXPECT_EQ(Value().to_string(), "_|_");
  EXPECT_EQ(Value::of(1, 2).to_string(), "(1,2)");
}

TEST(SimMemoryTest, AllocReadWrite) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  EXPECT_EQ(mem.register_count(), 1);
  EXPECT_EQ(mem.name(r), "r");
  EXPECT_TRUE(mem.read(r).is_nil());
  mem.write(r, Value::of(5));
  EXPECT_EQ(mem.read(r).as_int_or(0), 5);
  EXPECT_EQ(mem.read_count(), 2);
  EXPECT_EQ(mem.write_count(), 1);
  EXPECT_EQ(mem.peek(r), Value::of(5));  // peek does not count
  EXPECT_EQ(mem.read_count(), 2);
}

TEST(SimMemoryTest, AllocArrayContiguous) {
  SimMemory mem;
  mem.alloc("pad");
  const RegisterId base = mem.alloc_array("arr", 4);
  EXPECT_EQ(mem.register_count(), 5);
  EXPECT_EQ(mem.name(base), "arr[0]");
  EXPECT_EQ(mem.name(base + 3), "arr[3]");
  EXPECT_THROW(mem.read(99), ContractViolation);
}

// A tiny program: write x, read it back into *out, write x+1.
Prog write_read_write(RegisterId reg, std::int64_t x, std::int64_t* out) {
  co_await write(reg, Value::of(x));
  const Value v = co_await read(reg);
  *out = v.as_int_or(-1);
  co_await write(reg, Value::of(x + 1));
}

TEST(ProgramTest, OneOpPerStep) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  std::int64_t out = 0;
  ProcessRuntime proc(0);
  proc.add_task(write_read_write(r, 10, &out), "wrw");

  EXPECT_FALSE(proc.halted());
  EXPECT_TRUE(proc.step(mem));  // write 10
  EXPECT_EQ(mem.peek(r), Value::of(10));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(proc.step(mem));  // read
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(proc.step(mem));  // write 11
  EXPECT_EQ(mem.peek(r), Value::of(11));
  EXPECT_TRUE(proc.halted());
  EXPECT_FALSE(proc.step(mem));  // halted: no-op step
  EXPECT_EQ(proc.ops_executed(), 3);
}

Prog thrower(RegisterId reg) {
  co_await write(reg, Value::of(1));
  throw std::runtime_error("program bug");
}

TEST(ProgramTest, ExceptionsPropagateToDriver) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  ProcessRuntime proc(0);
  proc.add_task(thrower(r), "thrower");
  // The first step executes the write and resumes into the throw; the
  // exception must surface at the driver, not be swallowed.
  EXPECT_THROW(
      {
        for (int i = 0; i < 3; ++i) proc.step(mem);
      },
      std::runtime_error);
  EXPECT_EQ(mem.peek(r), Value::of(1));  // the write did happen
}

Prog incrementer(RegisterId reg, int times) {
  for (int idx = 0; idx < times; ++idx) {
    const Value v = co_await read(reg);
    co_await write(reg, Value::of(v.as_int_or(0) + 1));
  }
}

TEST(ProcessRuntimeTest, RoundRobinAcrossTasks) {
  SimMemory mem;
  const RegisterId a = mem.alloc("a");
  const RegisterId b = mem.alloc("b");
  ProcessRuntime proc(0);
  proc.add_task(incrementer(a, 2), "inc-a");
  proc.add_task(incrementer(b, 2), "inc-b");
  // 8 ops total, alternating between the two tasks.
  for (int idx = 0; idx < 8; ++idx) EXPECT_TRUE(proc.step(mem));
  EXPECT_TRUE(proc.halted());
  EXPECT_EQ(mem.peek(a), Value::of(2));
  EXPECT_EQ(mem.peek(b), Value::of(2));
}

TEST(ProcessRuntimeTest, FinishedTaskSkipped) {
  SimMemory mem;
  const RegisterId a = mem.alloc("a");
  const RegisterId b = mem.alloc("b");
  ProcessRuntime proc(0);
  proc.add_task(incrementer(a, 1), "short");
  proc.add_task(incrementer(b, 3), "long");
  for (int idx = 0; idx < 8; ++idx) proc.step(mem);
  EXPECT_EQ(mem.peek(a), Value::of(1));
  EXPECT_EQ(mem.peek(b), Value::of(3));
}

TEST(SubProgramPumpTest, ForwardsChildOps) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  std::int64_t seen = -1;
  auto parent = [](RegisterId reg, std::int64_t* out) -> Prog {
    co_await write(reg, Value::of(7));
    SETLIB_CO_RUN(incrementer(reg, 2));
    const Value v = co_await read(reg);
    *out = v.as_int_or(0);
  };
  ProcessRuntime proc(0);
  proc.add_task(parent(r, &seen), "parent");
  // Ops: write + (read+write)*2 + read = 6.
  int ops = 0;
  while (!proc.halted() && ops < 20) {
    proc.step(mem);
    ++ops;
  }
  EXPECT_EQ(ops, 6);
  EXPECT_EQ(seen, 9);
}

TEST(SimulatorTest, RecordsExecutedSchedule) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  Simulator sim(mem, 3);
  for (Pid p = 0; p < 3; ++p) {
    sim.process(p).add_task(incrementer(r, 100), "inc");
  }
  sched::RoundRobinGenerator gen(3);
  EXPECT_EQ(sim.run(gen, 30), 30);
  EXPECT_EQ(sim.executed().size(), 30);
  for (Pid p = 0; p < 3; ++p) EXPECT_EQ(sim.executed().count(p), 10);
}

TEST(SimulatorTest, CrashStopsSteps) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  Simulator sim(mem, 2);
  sim.process(0).add_task(incrementer(r, 1'000), "inc0");
  sim.process(1).add_task(incrementer(r, 1'000), "inc1");
  sim.crash(1);
  sched::RoundRobinGenerator gen(2);
  sim.run(gen, 50);
  EXPECT_EQ(sim.executed().count(1), 0);
  EXPECT_EQ(sim.executed().count(0), 50);
  EXPECT_TRUE(sim.crashed(1));
  EXPECT_EQ(sim.crashed_set(), ProcSet::of({1}));
}

TEST(SimulatorTest, CrashPlanTriggersMidRun) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  Simulator sim(mem, 2);
  sim.process(0).add_task(incrementer(r, 10'000), "inc0");
  sim.process(1).add_task(incrementer(r, 10'000), "inc1");
  sim.use_crash_plan(sched::CrashPlan::at(2, ProcSet::of(1), 20));
  sched::RoundRobinGenerator gen(2);
  sim.run(gen, 100);
  EXPECT_EQ(sim.executed().count(1, 20, sim.executed().size()), 0);
  EXPECT_GT(sim.executed().count(1), 0);
}

TEST(SimulatorTest, RunUntilStops) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  Simulator sim(mem, 2);
  sim.process(0).add_task(incrementer(r, 100'000), "inc");
  sim.process(1).add_task(incrementer(r, 100'000), "inc");
  sched::RoundRobinGenerator gen(2);
  const std::int64_t steps = sim.run_until(
      gen, 1'000'000, [&] { return mem.peek(r).as_int_or(0) >= 50; },
      /*check_every=*/1);
  EXPECT_LT(steps, 200);
  EXPECT_GE(mem.peek(r).as_int_or(0), 50);
}

TEST(SimulatorTest, StepAccountingMatchesMemoryCounters) {
  SimMemory mem;
  const RegisterId r = mem.alloc("r");
  Simulator sim(mem, 2);
  sim.process(0).add_task(incrementer(r, 50), "inc");
  sim.process(1).add_task(incrementer(r, 50), "inc");
  sched::RoundRobinGenerator gen(2);
  sim.run(gen, 120);
  EXPECT_EQ(mem.read_count() + mem.write_count(), 120);
}

}  // namespace
}  // namespace setlib::shm
