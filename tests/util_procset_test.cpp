#include "src/util/procset.h"

#include <gtest/gtest.h>

#include <set>

namespace setlib {
namespace {

TEST(ProcSetTest, EmptyAndUniverse) {
  const ProcSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);

  const ProcSet u = ProcSet::universe(5);
  EXPECT_EQ(u.size(), 5);
  for (Pid p = 0; p < 5; ++p) EXPECT_TRUE(u.contains(p));
  EXPECT_FALSE(u.contains(5));
}

TEST(ProcSetTest, OfAndWithWithout) {
  ProcSet s = ProcSet::of({1, 3, 3, 5});
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(2));

  s = s.with(2).without(3);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 3);
}

TEST(ProcSetTest, RangeMinMaxNth) {
  const ProcSet s = ProcSet::range(2, 6);  // {2,3,4,5}
  EXPECT_EQ(s.size(), 4);
  EXPECT_EQ(s.min(), 2);
  EXPECT_EQ(s.max(), 5);
  EXPECT_EQ(s.nth(0), 2);
  EXPECT_EQ(s.nth(1), 3);
  EXPECT_EQ(s.nth(3), 5);
}

TEST(ProcSetTest, NthThrowsOutOfRange) {
  const ProcSet s = ProcSet::of({0, 2});
  EXPECT_THROW(s.nth(2), ContractViolation);
  EXPECT_THROW(ProcSet().min(), ContractViolation);
}

TEST(ProcSetTest, SetAlgebra) {
  const ProcSet a = ProcSet::of({0, 1, 2});
  const ProcSet b = ProcSet::of({2, 3});
  EXPECT_EQ((a | b), ProcSet::of({0, 1, 2, 3}));
  EXPECT_EQ((a & b), ProcSet::of({2}));
  EXPECT_EQ((a - b), ProcSet::of({0, 1}));
  EXPECT_TRUE(ProcSet::of({0, 1}).subset_of(a));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(ProcSet::of({0}).intersects(ProcSet::of({1})));
}

TEST(ProcSetTest, ComplementWithinUniverse) {
  const ProcSet s = ProcSet::of({0, 2});
  EXPECT_EQ(s.complement(4), ProcSet::of({1, 3}));
  EXPECT_EQ(ProcSet().complement(3), ProcSet::universe(3));
}

TEST(ProcSetTest, ToVectorSortedAscending) {
  const ProcSet s = ProcSet::of({7, 1, 4});
  const std::vector<Pid> v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 4);
  EXPECT_EQ(v[2], 7);
}

TEST(ProcSetTest, Printing) {
  EXPECT_EQ(ProcSet::of({0, 2, 5}).to_string(), "{0,2,5}");
  EXPECT_EQ(ProcSet().to_string(), "{}");
}

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1);
  EXPECT_EQ(binomial(5, 0), 1);
  EXPECT_EQ(binomial(5, 5), 1);
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(10, 3), 120);
  EXPECT_EQ(binomial(3, 5), 0);
  EXPECT_EQ(binomial(52, 5), 2598960);
}

TEST(BinomialTest, PascalIdentity) {
  for (int n = 1; n <= 20; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(KSubsetsTest, EnumeratesAllDistinctSubsets) {
  const auto subsets = k_subsets(6, 3);
  EXPECT_EQ(static_cast<std::int64_t>(subsets.size()), binomial(6, 3));
  std::set<std::uint64_t> seen;
  for (const ProcSet s : subsets) {
    EXPECT_EQ(s.size(), 3);
    EXPECT_TRUE(s.subset_of(ProcSet::universe(6)));
    seen.insert(s.mask());
  }
  EXPECT_EQ(seen.size(), subsets.size());
}

TEST(KSubsetsTest, EdgeCases) {
  EXPECT_EQ(k_subsets(4, 0).size(), 1u);  // the empty set
  EXPECT_TRUE(k_subsets(4, 0)[0].empty());
  const auto full = k_subsets(4, 4);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0], ProcSet::universe(4));
}

class SubsetRankerParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SubsetRankerParamTest, RankUnrankBijection) {
  const auto [n, k] = GetParam();
  SubsetRanker ranker(n, k);
  EXPECT_EQ(ranker.count(), binomial(n, k));
  std::set<std::uint64_t> seen;
  for (std::int64_t r = 0; r < ranker.count(); ++r) {
    const ProcSet s = ranker.unrank(r);
    EXPECT_EQ(s.size(), k);
    EXPECT_EQ(ranker.rank(s), r);
    seen.insert(s.mask());
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ranker.count());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SubsetRankerParamTest,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 1}, std::pair{4, 2},
                      std::pair{5, 3}, std::pair{6, 3}, std::pair{8, 4},
                      std::pair{10, 2}, std::pair{10, 5}, std::pair{12, 6}));

TEST(SubsetRankerTest, UnrankOrderIsMonotone) {
  // The combinadic order coincides with ascending mask order for the
  // rank enumeration used by k_subsets.
  SubsetRanker ranker(7, 3);
  for (std::int64_t r = 1; r < ranker.count(); ++r) {
    EXPECT_LT(ranker.unrank(r - 1).mask(), ranker.unrank(r).mask());
  }
}

TEST(SubsetRankerTest, RejectsWrongSizeSet) {
  SubsetRanker ranker(5, 2);
  EXPECT_THROW(ranker.rank(ProcSet::of({0, 1, 2})), ContractViolation);
  EXPECT_THROW(ranker.unrank(ranker.count()), ContractViolation);
}

}  // namespace
}  // namespace setlib
