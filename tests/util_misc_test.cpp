#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/util/assert.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace setlib {
namespace {

TEST(AssertTest, ViolationCarriesLocation) {
  try {
    SETLIB_EXPECTS(1 == 2);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 20'000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformityRoughCheck) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(RngTest, WeightedPick) {
  Rng rng(13);
  int hits[3] = {};
  for (int i = 0; i < 30'000; ++i) {
    ++hits[rng.next_weighted({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_GT(hits[2], 2 * hits[0]);
  EXPECT_GT(hits[0], 0);
}

TEST(RngTest, ForkDiverges) {
  Rng a(5);
  Rng b = a.fork();
  bool differ = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.percentile(50), ContractViolation);
}

TEST(TextTableTest, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(42);
  t.row().cell("b").cell("longer-content");
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value          |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 42             |"), std::string::npos);
  EXPECT_NE(out.find("| b     | longer-content |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, RejectsTooManyCells) {
  TextTable t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), ContractViolation);
}

TEST(TextTableTest, CellBeforeRowThrows) {
  TextTable t({"h"});
  EXPECT_THROW(t.cell("x"), ContractViolation);
}

}  // namespace
}  // namespace setlib
