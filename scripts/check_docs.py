#!/usr/bin/env python3
"""Cross-checks the docs pages against the repo.

Usage: check_docs.py [repo_root]

Three checks, all fatal on failure:
  1. Every relative markdown link in docs/*.md and README.md resolves
     to an existing file (http(s) links, pure #anchors, and links that
     escape the repo root — e.g. the CI badge's ../../actions URL —
     are skipped).
  2. Every `bench_<name>` mentioned in docs/EXPERIMENTS.md exists as
     bench/<name>.cpp (CMake globs bench/*.cpp into one target per
     file, so file presence == target presence).
  3. Every shipped bench binary (bench/*.cpp) is covered by
     docs/EXPERIMENTS.md.
  4. Every public core header (src/core/*.h) is mentioned by stem in
     docs/ARCHITECTURE.md — the layer map must not silently fall
     behind the core surface.
  5. Every runtime header (src/runtime/*.h) is mentioned by stem in
     docs/ARCHITECTURE.md — same rule for the runtime layer (the
     orchestration transport seam lives there).
  6. Every sched header (src/sched/*.h) is mentioned by stem in
     docs/ARCHITECTURE.md — same rule for the model layer (the
     observation feed and the reactive adversaries live there).
  7. Every util header (src/util/*.h) is mentioned by stem in
     docs/ARCHITECTURE.md — same rule for the foundation layer (the
     arena allocator and the contract macros live there).
  8. Every determinism-linter rule name (check_determinism.RULES,
     plus the allow-comment escape-hatch rule) is documented in
     docs/STATIC_ANALYSIS.md — the linter must not grow a rule the
     policy page never explains.
"""
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_RE = re.compile(r"\bbench_[a-z0-9_]+\b")


def check_links(root):
    failures = []
    pages = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    checked = 0
    for page in pages:
        if not page.exists():
            failures.append(f"{page}: page itself is missing")
            continue
        for link in LINK_RE.findall(page.read_text()):
            if link.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = (page.parent / link.split("#")[0]).resolve()
            if not target.is_relative_to(root.resolve()):
                continue  # escapes the repo (e.g. the CI badge URL)
            checked += 1
            if not target.exists():
                failures.append(
                    f"{page.relative_to(root)}: broken link -> {link}")
    print(f"links: {checked} internal links checked, "
          f"{len(failures)} broken")
    return failures


def check_benches(root):
    failures = []
    experiments = root / "docs" / "EXPERIMENTS.md"
    mentioned = set(BENCH_RE.findall(experiments.read_text()))
    shipped = {p.stem for p in (root / "bench").glob("*.cpp")}
    for name in sorted(mentioned - shipped):
        failures.append(
            f"EXPERIMENTS.md names {name}, but bench/{name}.cpp "
            f"does not exist")
    for name in sorted(shipped - mentioned):
        failures.append(
            f"bench/{name}.cpp ships, but EXPERIMENTS.md never "
            f"mentions {name}")
    print(f"benches: {len(shipped)} shipped, {len(mentioned)} "
          f"documented, {len(failures)} mismatches")
    return failures


def check_headers(root, layer):
    failures = []
    architecture = (root / "docs" / "ARCHITECTURE.md").read_text()
    headers = sorted((root / "src" / layer).glob("*.h"))
    for header in headers:
        if not re.search(rf"\b{re.escape(header.stem)}\b", architecture):
            failures.append(
                f"src/{layer}/{header.name} is a public {layer} header, "
                f"but ARCHITECTURE.md never mentions '{header.stem}'")
    print(f"{layer} headers: {len(headers)} shipped, "
          f"{len(failures)} undocumented")
    return failures


def check_linter_rules(root):
    failures = []
    sys.path.insert(0, str(root / "scripts"))
    import check_determinism
    doc = (root / "docs" / "STATIC_ANALYSIS.md").read_text()
    names = [name for name, _, _ in check_determinism.RULES]
    names.append("allow-comment")  # the escape-hatch finding
    for name in names:
        if f"`{name}`" not in doc:
            failures.append(
                f"determinism-linter rule '{name}' is undocumented in "
                f"docs/STATIC_ANALYSIS.md")
    print(f"linter rules: {len(names)} rules, "
          f"{len(failures)} undocumented")
    return failures


def main():
    default_root = pathlib.Path(__file__).resolve().parent.parent
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else default_root
    failures = (check_links(root) + check_benches(root) +
                check_headers(root, "core") +
                check_headers(root, "runtime") +
                check_headers(root, "sched") +
                check_headers(root, "util") +
                check_linter_rules(root))
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        raise SystemExit(f"{len(failures)} docs check(s) failed")
    print("docs are consistent with the repo")


if __name__ == "__main__":
    main()
