#!/usr/bin/env python3
"""Checks that sharded sweep runs recombine to the unsharded run.

Usage: check_shard_union.py FULL.json SHARD0.json [SHARD1.json ...]
       check_shard_union.py FULL.json --merged MERGED.json

Two modes:

  * Shard list (legacy): a thin structural check on the raw shard
    documents — per section, the shards' "rows" arrays concatenate to
    the full run's rows and the cell counts sum. The real merge logic
    lives in C++ (core::merge_shard_docs, exposed as
    `sweep_orchestrator --merge-only`); this path just sanity-checks
    raw worker output without needing the binary.

  * --merged: full comparison of an already-merged document (written
    by sweep_orchestrator) against the unsharded run. The documents
    must be bit-identical in canonical form (sorted keys) after
    stripping timing keys.

Timing keys — the only fields allowed to differ — are "runs_per_sec",
"orchestration" (the elastic orchestrator's lease/straggler report:
pure scheduling facts), and any key containing "wall", "seconds", or
"speedup". This mirrors core::is_timing_key in src/core/report.cpp;
keep the two in sync.
"""
import difflib
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def is_timing_key(key):
    return (key == "runs_per_sec" or key == "orchestration"
            or "wall" in key or "seconds" in key or "speedup" in key)


def strip_timing(obj):
    if isinstance(obj, dict):
        return {k: strip_timing(v) for k, v in obj.items()
                if not is_timing_key(k)}
    if isinstance(obj, list):
        return [strip_timing(v) for v in obj]
    return obj


def canonical(doc):
    return json.dumps(strip_timing(doc), sort_keys=True, indent=1)


def check_merged(full_path, merged_path):
    want = canonical(load(full_path))
    got = canonical(load(merged_path))
    if want == got:
        print(f"{merged_path} is bit-identical to {full_path} "
              f"modulo timing keys")
        return
    diff = difflib.unified_diff(
        want.splitlines(), got.splitlines(),
        fromfile=full_path, tofile=merged_path, lineterm="")
    shown = list(diff)[:60]
    print("\n".join(shown))
    raise SystemExit(
        f"FAIL: {merged_path} differs from {full_path} "
        f"(timing keys already excluded)")


def sections_by_name(doc):
    out = {}
    for section in doc["sections"]:
        name = section["name"]
        if name in out:
            raise SystemExit(f"duplicate section {name!r}")
        out[name] = section
    return out


def check_shards(full_path, shard_paths):
    full = sections_by_name(load(full_path))
    shards = [sections_by_name(load(p)) for p in shard_paths]

    failures = 0
    for name, section in full.items():
        parts = [s[name] for s in shards if name in s]
        cells = sum(p["cells"] for p in parts)
        if cells != section["cells"]:
            print(f"FAIL {name}: shard cells sum {cells} != "
                  f"full {section['cells']}")
            failures += 1
        if "rows" in section:
            joined = [row for p in parts for row in p.get("rows", [])]
            if joined != section["rows"]:
                print(f"FAIL {name}: concatenated shard rows differ "
                      f"from the unsharded rows")
                for got, want in zip(joined, section["rows"]):
                    if got != want:
                        print(f"  first diff: shard {got} vs full {want}")
                        break
                failures += 1
            else:
                print(f"ok   {name}: {len(joined)} rows identical")
        else:
            print(f"ok   {name}: {cells} cells")
    if failures:
        raise SystemExit(f"{failures} section(s) failed the union check")
    print("shard union is bit-identical to the unsharded run")


def main():
    if len(sys.argv) < 3:
        raise SystemExit(__doc__)
    if sys.argv[2] == "--merged":
        if len(sys.argv) != 4:
            raise SystemExit(__doc__)
        check_merged(sys.argv[1], sys.argv[3])
    else:
        check_shards(sys.argv[1], sys.argv[2:])


if __name__ == "__main__":
    main()
