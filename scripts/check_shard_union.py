#!/usr/bin/env python3
"""Checks that the union of sharded sweep runs equals the unsharded run.

Usage: check_shard_union.py FULL.json SHARD0.json [SHARD1.json ...]

The shard JSONs must come from the same bench invoked with
--shard=0/N .. --shard=(N-1)/N, the full JSON from an unsharded run.
For every section, the concatenation of the shards' deterministic facts
must be bit-identical to the full run's:
  - grid sections: the per-cell "rows" arrays (global index, success,
    detector_ok, distinct, steps, witness_bound) concatenate, in order,
    to the full run's rows;
  - all sections: the shard cell counts sum to the full cell count.
Wall-clock fields (wall_seconds, runs_per_sec, cell_seconds_*) are
ignored by construction: they are never compared.
"""
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def sections_by_name(doc):
    out = {}
    for section in doc["sections"]:
        name = section["name"]
        if name in out:
            raise SystemExit(f"duplicate section {name!r}")
        out[name] = section
    return out


def main():
    if len(sys.argv) < 3:
        raise SystemExit(__doc__)
    full = sections_by_name(load(sys.argv[1]))
    shards = [sections_by_name(load(p)) for p in sys.argv[2:]]

    failures = 0
    for name, section in full.items():
        parts = [s[name] for s in shards if name in s]
        cells = sum(p["cells"] for p in parts)
        if cells != section["cells"]:
            print(f"FAIL {name}: shard cells sum {cells} != "
                  f"full {section['cells']}")
            failures += 1
        if "rows" in section:
            joined = [row for p in parts for row in p.get("rows", [])]
            if joined != section["rows"]:
                print(f"FAIL {name}: concatenated shard rows differ "
                      f"from the unsharded rows")
                for got, want in zip(joined, section["rows"]):
                    if got != want:
                        print(f"  first diff: shard {got} vs full {want}")
                        break
                failures += 1
            else:
                print(f"ok   {name}: {len(joined)} rows identical")
        else:
            print(f"ok   {name}: {cells} cells")
    if failures:
        raise SystemExit(f"{failures} section(s) failed the union check")
    print("shard union is bit-identical to the unsharded run")


if __name__ == "__main__":
    main()
