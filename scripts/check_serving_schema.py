#!/usr/bin/env python3
"""Validates a BENCH_serving.json document against the serving schema.

Usage: check_serving_schema.py BENCH_serving.json

Checks that the closed_loop section is a well-formed grid section
(rows match the cell count) carrying the full admission/SLO annotation
set, that the kSame keys are declared in same_keys so shard merges
enforce them, and that the admission accounting is internally
consistent (accepted + shed == offered, decided_ok <= batch_requests).
Fatal on any mismatch — CI runs this against the smoke run's output.
"""
import json
import sys

SAME_KEYS = [
    "requests_offered", "requests_accepted", "requests_shed",
    "queue_cap", "batch_max", "queue_depth_max", "queue_depth_mean",
    "latency_p50_ticks", "latency_p99_ticks", "latency_p999_ticks",
    "latency_max_ticks", "slo_latency_ticks", "slo_target",
    "slo_violations", "error_budget_burn",
]
SUM_KEYS = ["batch_requests", "decided_ok"]
ROW_KEYS = {"index", "success", "detector_ok", "distinct", "steps",
            "witness_bound"}


def fail(message):
    raise SystemExit(f"FAIL {message}")


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as handle:
        doc = json.load(handle)

    sections = {s["name"]: s for s in doc.get("sections", [])}
    if "closed_loop" not in sections:
        fail("no closed_loop section in the document")
    closed = sections["closed_loop"]

    rows = closed.get("rows")
    if rows is None:
        fail("closed_loop is not a grid section (no rows array)")
    if len(rows) != closed["cells"]:
        fail(f"cells={closed['cells']} but rows has {len(rows)} entries")
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")

    for key in SAME_KEYS + SUM_KEYS:
        if key not in closed:
            fail(f"closed_loop is missing the '{key}' annotation")
    if closed.get("same_keys") != SAME_KEYS:
        fail(f"same_keys {closed.get('same_keys')} != expected "
             f"{SAME_KEYS}")

    offered = closed["requests_offered"]
    accepted = closed["requests_accepted"]
    shed = closed["requests_shed"]
    if accepted + shed != offered:
        fail(f"accepted({accepted}) + shed({shed}) != offered({offered})")
    if closed["decided_ok"] > closed["batch_requests"]:
        fail(f"decided_ok({closed['decided_ok']}) exceeds "
             f"batch_requests({closed['batch_requests']})")
    if closed["queue_depth_max"] > closed["queue_cap"]:
        fail(f"queue_depth_max({closed['queue_depth_max']}) exceeds "
             f"queue_cap({closed['queue_cap']})")
    if closed["error_budget_burn"] < 0:
        fail("negative error_budget_burn")

    # Open loop is optional (--qps runs only); when present, every
    # extra key must be a timing key so it never leaks into merges.
    if "open_loop" in sections:
        frame = {"name", "cells", "wall_seconds", "runs_per_sec",
                 "same_keys"}
        for key in sections["open_loop"]:
            if key in frame:
                continue
            if not ("wall" in key or "seconds" in key or
                    key == "runs_per_sec"):
                fail(f"open_loop key '{key}' is not a timing key")

    print(f"serving schema OK: {len(rows)} batch rows, "
          f"offered={offered} accepted={accepted} shed={shed}, "
          f"decided_ok={closed['decided_ok']}")


if __name__ == "__main__":
    main()
