#!/usr/bin/env python3
"""Compares two BENCH_<name>.json documents on exact counter keys.

Usage: compare_bench.py baseline.json candidate.json [--keys k1,k2,...]

A minimal baseline-vs-candidate regression gate for the allocation
counters the arena pipeline reports. Unlike timing keys, these
counters are deterministic facts — a cell's `allocs_per_op` /
`bytes_per_op` is a pure function of (config, arena reserve), see
docs/MEMORY.md — so the comparison is exact: no variance handling, no
noise thresholds. A candidate value *above* its baseline is a
regression; equal or lower passes (improvements print, so a baseline
refresh is a conscious step, not drift).

Compared, per section (matched by name) and per row (matched by
`index`):
  - section stats:  allocs_per_op_max, bytes_per_op_max
  - row facts:      allocs_per_op, bytes_per_op

Sections or keys present on only one side are reported but do not
fail the gate — benches grow sections, and old baselines predate the
keys. Exit status: 0 clean or improvements only, 1 regression, 2
usage/parse errors. CI wires this as a soft gate (the step reports
but does not block) until a curated baseline lands in-tree.
"""
import json
import sys

SECTION_KEYS = ("allocs_per_op_max", "bytes_per_op_max")
ROW_KEYS = ("allocs_per_op", "bytes_per_op")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"compare_bench: cannot read {path}: {err}")


def sections_by_name(doc):
    return {s.get("name"): s for s in doc.get("sections", [])
            if isinstance(s, dict)}


def compare_value(label, base, cand, regressions, improvements):
    if base is None or cand is None:
        return  # key predates one side; reported via section notes
    if cand > base:
        regressions.append(f"{label}: {base} -> {cand}")
    elif cand < base:
        improvements.append(f"{label}: {base} -> {cand}")


def compare_section(name, base, cand, regressions, improvements):
    for key in SECTION_KEYS:
        compare_value(f"{name}.{key}", base.get(key), cand.get(key),
                      regressions, improvements)
    base_rows = {r.get("index"): r for r in base.get("rows", [])}
    cand_rows = {r.get("index"): r for r in cand.get("rows", [])}
    for index in sorted(set(base_rows) & set(cand_rows),
                        key=lambda i: (i is None, i)):
        for key in ROW_KEYS:
            compare_value(f"{name}.rows[{index}].{key}",
                          base_rows[index].get(key),
                          cand_rows[index].get(key),
                          regressions, improvements)


def main(argv):
    keys_override = None
    args = []
    for arg in argv[1:]:
        if arg.startswith("--keys="):
            keys_override = tuple(k for k in arg[7:].split(",") if k)
        else:
            args.append(arg)
    if len(args) != 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    global SECTION_KEYS, ROW_KEYS
    if keys_override:
        # An explicit key list applies at both levels; unknown keys
        # simply never match and compare nothing.
        SECTION_KEYS = keys_override
        ROW_KEYS = keys_override

    base_doc, cand_doc = load(args[0]), load(args[1])
    base_secs, cand_secs = sections_by_name(base_doc), sections_by_name(cand_doc)

    regressions, improvements = [], []
    shared = [n for n in base_secs if n in cand_secs]
    for name in shared:
        compare_section(name, base_secs[name], cand_secs[name],
                        regressions, improvements)
    for name in sorted(set(base_secs) - set(cand_secs)):
        print(f"note: section '{name}' only in baseline")
    for name in sorted(set(cand_secs) - set(base_secs)):
        print(f"note: section '{name}' only in candidate")

    print(f"compared {len(shared)} shared section(s): "
          f"{len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s)")
    for line in improvements:
        print(f"IMPROVED {line}")
    for line in regressions:
        print(f"REGRESSED {line}")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
