#!/usr/bin/env python3
"""Determinism-contract linter for the deterministic layers of src/.

The repo's load-bearing guarantee is bit-identical results at any
thread count, shard split, or lease tiling (docs/ARCHITECTURE.md, "The
determinism contract"). The end-to-end diff tests catch violations
after the fact; this linter catches the *sources* of nondeterminism at
review time by banning the constructs that have no place in a
deterministic layer:

  raw-rand            rand()/srand(): global-state RNG, seeded (or
                      not) per process, never per cell.
  random-device       std::random_device: hardware entropy, different
                      every run by design.
  wall-clock          time()/clock()/gettimeofday()/localtime()/
                      gmtime(): wall-clock reads outside the
                      timing-key files.
  chrono              std::chrono outside the timing-key files.
                      Timing may only feed keys that is_timing_key
                      excludes from determinism diffs.
  unordered-iteration std::unordered_{map,set,multimap,multiset}:
                      iteration order is implementation-defined, and
                      anything that iterates one eventually feeds a
                      ReportSink row or JSON document.
  pointer-order       std::less<T*> / reinterpret_cast to
                      (u)intptr_t: pointer values vary per run (ASLR,
                      allocator), so orderings or hashes derived from
                      them are nondeterministic.
  unseeded-rng        default-constructed <random> engines: an
                      unseeded engine is a fixed seed at best and an
                      implementation choice at worst; every engine
                      takes its seed from the splitmix64 stream
                      (src/util/rng.h).

Escape hatch: a line ending in `// determinism: allow(<reason>)` is
exempt from every rule; the reason is mandatory and lands in review.
The timing-key allowlist (TIMING_KEY_FILES) exempts the files whose
entire job is wall-clock measurement — their output travels under
timing keys, which merge/diff tooling excludes by rule.

Usage: check_determinism.py [root] [extra files...]
Scans <root>/src by default; extra explicit files are scanned with the
same rules (used by the fixture self-tests). Exit 1 on any finding.
"""
import pathlib
import re
import sys

# Files whose whole purpose is wall-clock measurement: pacing,
# subprocess timeouts, lease deadlines, serving QPS, WallTimer. Their
# measurements only ever feed timing keys (runs_per_sec, *wall*,
# *seconds*, "orchestration"), which core::is_timing_key excludes from
# determinism diffs — see docs/STATIC_ANALYSIS.md for the policy on
# growing this list.
TIMING_KEY_FILES = {
    "src/core/loadgen.h",       # open-loop QPS pacing types
    "src/core/loadgen.cpp",
    "src/core/orchestrator.h",  # lease timeouts, backoff, transport
    "src/core/orchestrator.cpp",
    "src/core/runner.h",        # WallTimer
    "src/core/service.h",       # open-loop serving mode
    "src/core/service.cpp",
    "src/core/workqueue.h",     # lease deadlines, straggler ages
    "src/core/workqueue.cpp",
    "src/runtime/executor.h",   # max_wall caps
    "src/runtime/executor.cpp",
    "src/runtime/rt_harness.h",
    "src/runtime/rt_harness.cpp",
    "src/runtime/subprocess.h",  # child process timeouts
    "src/runtime/subprocess.cpp",
    "src/runtime/transport.h",
    "src/runtime/transport.cpp",
    "src/util/sync.h",          # CondVar::wait_for timeout parameter
}

# Rules whose scope the timing-key allowlist narrows; every other rule
# applies to every file (escape hatch: the allow comment).
TIMING_SCOPED_RULES = {"wall-clock", "chrono"}

# (name, compiled regex, message). Names are load-bearing: the fixture
# tests fire each one, and check_docs.py requires each to be
# documented in docs/STATIC_ANALYSIS.md.
RULES = [
    ("raw-rand",
     re.compile(r"(?<![\w.>:])s?rand\s*\("),
     "rand()/srand() is global-state RNG; use util::SplitMix64 with a "
     "derived seed"),
    ("random-device",
     re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is hardware entropy; seeds must come from "
     "the experiment's seed stream"),
    ("wall-clock",
     re.compile(
         r"(?<![\w.>:])(time|clock|gettimeofday|localtime|gmtime)\s*\("),
     "wall-clock read in a deterministic layer; only timing-key files "
     "may observe the clock"),
    ("chrono",
     re.compile(r"\bstd\s*::\s*chrono\b"),
     "std::chrono in a deterministic layer; timing belongs to the "
     "timing-key files and their timing keys"),
    ("unordered-iteration",
     re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b"),
     "unordered container iteration order is implementation-defined "
     "and leaks into ReportSink/JSON rows; use std::map/std::vector"),
    ("pointer-order",
     re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>"
                r"|\breinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t\b"),
     "ordering/hashing by pointer value varies per run (ASLR, "
     "allocator); order by index or name instead"),
    ("unseeded-rng",
     re.compile(r"\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|"
                r"ranlux(24|48)(_base)?|knuth_b|default_random_engine)"
                r"\s+\w+\s*(;|\{\s*\})"),
     "default-constructed <random> engine; every engine is seeded "
     "from the splitmix64 stream"),
]

ALLOW_RE = re.compile(r"//\s*determinism:\s*allow\(([^)]+)\)")


def strip_noise(line, in_block_comment):
    """Blanks string/char literals and comments so rule regexes only
    see code. Returns (code, still_in_block_comment)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # line comment: rest is not code
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def lint_file(path, rel, findings):
    timing_file = rel in TIMING_KEY_FILES
    in_block = False
    try:
        text = path.read_text()
    except UnicodeDecodeError:
        return
    for lineno, line in enumerate(text.splitlines(), start=1):
        allow = ALLOW_RE.search(line)
        if allow and not allow.group(1).strip():
            findings.append(
                (rel, lineno, "allow-comment",
                 "determinism: allow() needs a non-empty reason"))
            continue
        code, in_block = strip_noise(line, in_block)
        if allow:
            continue
        for name, pattern, message in RULES:
            if timing_file and name in TIMING_SCOPED_RULES:
                continue
            if pattern.search(code):
                findings.append((rel, lineno, name, message))


def lint_paths(root, extra_files=()):
    """Lints <root>/src plus any explicit extra files; returns the
    finding list [(relpath, line, rule, message)]."""
    findings = []
    files = sorted((root / "src").rglob("*.h")) + \
        sorted((root / "src").rglob("*.cpp")) if (root / "src").is_dir() \
        else []
    for path in files:
        lint_file(path, path.relative_to(root).as_posix(), findings)
    for path in extra_files:
        path = pathlib.Path(path)
        lint_file(path, path.name, findings)
    return findings


def main():
    default_root = pathlib.Path(__file__).resolve().parent.parent
    args = sys.argv[1:]
    root = default_root
    extra = []
    for arg in args:
        p = pathlib.Path(arg)
        if p.is_dir():
            # Accept either the repo root or the src/ tree itself.
            root = p if (p / "src").is_dir() else p.parent
        else:
            extra.append(p)
    findings = lint_paths(root, extra)
    for rel, lineno, rule, message in findings:
        print(f"FAIL {rel}:{lineno}: [{rule}] {message}")
    scanned = len(list((root / "src").rglob("*.h"))) + \
        len(list((root / "src").rglob("*.cpp"))) + len(extra)
    print(f"determinism: {scanned} files scanned, "
          f"{len(findings)} finding(s)")
    if scanned == 0:
        raise SystemExit("no files scanned: pass the repo root "
                         "(or its src/ dir), not an arbitrary path")
    if findings:
        raise SystemExit(1)
    print("deterministic layers are clean")


if __name__ == "__main__":
    main()
