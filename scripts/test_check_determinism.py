#!/usr/bin/env python3
"""Self-tests for check_determinism.py: every rule must fire on its
fixture (tests/lint_fixtures/), the allow() escape hatch must
suppress, and src/ itself must be clean. Run directly or via ctest
(`check_determinism_fixtures`)."""
import pathlib
import sys
import unittest

SCRIPTS = pathlib.Path(__file__).resolve().parent
ROOT = SCRIPTS.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"
sys.path.insert(0, str(SCRIPTS))

import check_determinism  # noqa: E402


def rules_fired(fixture):
    findings = []
    check_determinism.lint_file(FIXTURES / fixture, fixture, findings)
    return [rule for (_, _, rule, _) in findings]


class RuleFixtures(unittest.TestCase):
    """One seeded-violation fixture per rule: each rule can fire."""

    def assert_only(self, fixture, rule, count=1):
        fired = rules_fired(fixture)
        self.assertEqual(
            fired, [rule] * count,
            f"{fixture}: expected {count} x [{rule}], got {fired}")

    def test_raw_rand(self):
        self.assert_only("raw_rand.cpp", "raw-rand", 2)

    def test_random_device(self):
        self.assert_only("random_device.cpp", "random-device")

    def test_wall_clock(self):
        self.assert_only("wall_clock.cpp", "wall-clock")

    def test_chrono(self):
        self.assert_only("chrono.cpp", "chrono")

    def test_unordered_iteration(self):
        self.assert_only("unordered_iteration.cpp", "unordered-iteration")

    def test_pointer_order(self):
        self.assert_only("pointer_order.cpp", "pointer-order", 2)

    def test_unseeded_rng(self):
        # The seeded engine on the fixture's last line must not fire.
        self.assert_only("unseeded_rng.cpp", "unseeded-rng", 2)

    def test_every_rule_has_a_fixture_test(self):
        tested = {name for name in dir(self)
                  if name.startswith("test_")}
        for rule, _, _ in check_determinism.RULES:
            self.assertIn(f"test_{rule.replace('-', '_')}", tested,
                          f"rule {rule} has no fixture test")


class EscapeHatch(unittest.TestCase):
    def test_allow_comment_suppresses(self):
        self.assertEqual(rules_fired("allow_escape.cpp"), [])

    def test_allow_without_reason_is_a_finding(self):
        self.assertEqual(rules_fired("allow_empty_reason.cpp"),
                         ["allow-comment"])


class Scoping(unittest.TestCase):
    def test_comments_and_strings_do_not_fire(self):
        self.assertEqual(rules_fired("clean.cpp"), [])

    def test_timing_key_files_exempt_from_chrono_only(self):
        rel = sorted(check_determinism.TIMING_KEY_FILES)[0]
        self.assertIn(rel, check_determinism.TIMING_KEY_FILES)
        findings = []
        # Lint a chrono fixture as-if it were a timing-key file: the
        # chrono rule must stay quiet there.
        timing_file = True
        self.assertTrue(timing_file)
        path = FIXTURES / "chrono.cpp"
        saved = check_determinism.TIMING_KEY_FILES
        try:
            check_determinism.TIMING_KEY_FILES = saved | {"chrono.cpp"}
            check_determinism.lint_file(path, "chrono.cpp", findings)
        finally:
            check_determinism.TIMING_KEY_FILES = saved
        self.assertEqual(findings, [])

    def test_timing_key_allowlist_files_exist(self):
        for rel in check_determinism.TIMING_KEY_FILES:
            self.assertTrue((ROOT / rel).exists(),
                            f"TIMING_KEY_FILES names missing file {rel}")

    def test_src_tree_is_clean(self):
        findings = check_determinism.lint_paths(ROOT)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
